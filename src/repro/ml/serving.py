"""Compiled predict plane: low-rank / pruned kernel serving.

Fleet scoring (PR 8) batched the *calls* — one ``model.predict`` per
tick — but each call is still an exact dense kernel evaluation:
O(n_due x N_sv x d) for SVR and O(n_due x N_train x d) for LS-SVM,
which keeps every training row as a reference. This module compiles a
fitted kernel regressor into a cheap serving form with three
composable optimizations:

1. **Support-vector pruning** — drop duals with ``|coef|`` below
   ``prune_tol * max|coef|`` and merge duplicate reference rows by
   summing their coefficients (bootstrap resamples and repeated
   windows produce exact duplicates).
2. **Nystrom low-rank factorization** — sample ``m = budget`` landmark
   rows ``L`` from the references ``R`` and fold the approximation
   ``K(x, R) ~= K(x, L) W^+ K(L, R)`` (``W = K(L, L)``) into a single
   precomputed weight vector ``w = W^+ K(L, R) coef``, so predict
   becomes one thin (n, m) Gram plus a matvec — O(n m) instead of
   O(n N_ref). When ``L`` contains all of ``R`` the factorization is
   exact (up to the pseudo-inverse cutoff).
3. **float32 batched path** — reference rows, weights and squared
   norms precast to float32 so the serving Gram runs at half the
   memory bandwidth; outputs are returned as float64.

Compilation is **accuracy-gated**: when a held-out split is supplied,
the compiled model is scored with the paper's S-MAE
(:func:`repro.ml.metrics.soft_mean_absolute_error`) against the exact
model and *rejected* — falling back to exact, bit-identical serving —
if the S-MAE delta exceeds ``tol``. An accepted compile is therefore a
measured speed/accuracy contract, not an assumption.

``BaggingRegressor`` ensembles compile member-wise against a *shared*
landmark set, grouped by kernel parameters so one Gram serves every
member in a group; ``predict_interval`` then costs one (n, m) Gram
per group instead of ``n_estimators`` dense kernel evaluations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.ml.ensemble import BaggingRegressor
from repro.ml.kernels import KernelExpansion, kernel_gram, squared_norms
from repro.ml.metrics import soft_mean_absolute_error
from repro.ml.pipeline import ScaledModel
from repro.obs import get_metrics
from repro.utils.rng import as_rng

__all__ = [
    "CompiledPredictor",
    "CompileReport",
    "MemberStats",
    "compile_predictor",
]

#: Relative eigenvalue cutoff for the Nystrom pseudo-inverse.
_PINV_RCOND = 1e-10


# ---------------------------------------------------------------------------
# compile pipeline stages
# ---------------------------------------------------------------------------


def _pinv_psd(W: np.ndarray) -> np.ndarray:
    """Pseudo-inverse of a symmetric PSD Gram matrix via ``eigh``.

    Eigenvalues at or below ``_PINV_RCOND * lambda_max`` are treated as
    zero — landmark sets with (near-)duplicate rows make ``W``
    rank-deficient and a plain ``inv`` would blow up.
    """
    vals, vecs = np.linalg.eigh(W)
    cutoff = _PINV_RCOND * max(float(vals[-1]), 0.0)
    keep = vals > cutoff
    if not keep.any():
        return np.zeros_like(W)
    vecs = vecs[:, keep]
    return (vecs / vals[keep]) @ vecs.T


def _prune(
    ref: np.ndarray, coef: np.ndarray, prune_tol: float
) -> tuple[np.ndarray, np.ndarray, int]:
    """Drop references whose dual coefficient is relatively near zero."""
    if coef.size == 0 or prune_tol <= 0.0:
        return ref, coef, 0
    keep = np.abs(coef) > prune_tol * float(np.max(np.abs(coef)))
    if keep.all():
        return ref, coef, 0
    return ref[keep], coef[keep], int(coef.size - keep.sum())


def _merge_duplicates(
    ref: np.ndarray, coef: np.ndarray
) -> tuple[np.ndarray, np.ndarray, int]:
    """Merge exactly-duplicate reference rows, summing their coefficients.

    A no-op (same arrays back, preserving row order and summation
    order) when every row is unique, so duplicate-free models keep
    bit-identical predictions through this stage.
    """
    if ref.shape[0] < 2:
        return ref, coef, 0
    uniq, inverse = np.unique(ref, axis=0, return_inverse=True)
    if uniq.shape[0] == ref.shape[0]:
        return ref, coef, 0
    merged = np.zeros(uniq.shape[0], dtype=coef.dtype)
    np.add.at(merged, inverse, coef)
    return uniq, merged, int(ref.shape[0] - uniq.shape[0])


def _nystroem_weights(
    exp: KernelExpansion,
    ref: np.ndarray,
    coef: np.ndarray,
    landmarks: np.ndarray,
    W_pinv: np.ndarray,
) -> np.ndarray:
    """Fold ``K ~= C W^+ C^T`` into landmark weights.

    ``f(x) = K(x, R) coef ~= K(x, L) [W^+ K(L, R) coef]`` — the
    bracketed vector is returned; serving needs only ``K(x, L)``.
    """
    if ref.shape[0] == 0:
        return np.zeros(landmarks.shape[0])
    K_LR = kernel_gram(
        landmarks,
        ref,
        kernel=exp.kernel,
        gamma=exp.gamma,
        degree=exp.degree,
        coef0=exp.coef0,
    )
    return W_pinv @ (K_LR @ coef)


# ---------------------------------------------------------------------------
# compiled serving forms
# ---------------------------------------------------------------------------


@dataclass
class _CompiledKernel:
    """Single kernel machine in serving form: one Gram, one matvec."""

    ref: np.ndarray  # (m, d), serving dtype, C-contiguous
    weights: np.ndarray  # (m,), serving dtype
    intercept: float
    kernel: str
    gamma: float
    degree: int
    coef0: float
    sq_ref: "np.ndarray | None"  # serving-dtype ``squared_norms(ref)`` (rbf)
    dtype: str

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.ref.shape[0] == 0:
            return np.full(np.asarray(X).shape[0], self.intercept)
        K = kernel_gram(
            X,
            self.ref,
            kernel=self.kernel,
            gamma=self.gamma,
            degree=self.degree,
            coef0=self.coef0,
            sq_y=self.sq_ref,
            dtype=np.dtype(self.dtype),
        )
        # Python-float intercept keeps the serving dtype (NEP 50); the
        # final cast to float64 is a no-op on the float64 path.
        return np.asarray(K @ self.weights + self.intercept, dtype=np.float64)


@dataclass
class _CompiledScaled:
    """Affine pre/post transform around a compiled kernel machine.

    The model zoo wraps its kernel learners in
    :class:`~repro.ml.pipeline.ScaledModel`; the standardization is two
    O(n d) affine passes, so it stays exact (reusing the fitted scaler)
    while the inner kernel evaluation is the part that gets compiled.
    """

    scaler: "object | None"  # the fitted StandardScaler (None: no X scaling)
    y_scale: float
    y_mean: float
    inner: _CompiledKernel

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.scaler is not None:
            X = self.scaler.transform(X)
        return self.inner.predict(X) * self.y_scale + self.y_mean


@dataclass
class _MemberGroup:
    """Ensemble members sharing kernel parameters: one Gram per group."""

    kernel: str
    gamma: float
    degree: int
    coef0: float
    member_idx: np.ndarray  # positions in ensemble member order
    weights: np.ndarray  # (m, k) serving dtype, one column per member
    intercepts: np.ndarray  # (k,) serving dtype


@dataclass
class _CompiledEnsemble:
    """Member-wise compiled bagging ensemble over shared landmarks."""

    ref: np.ndarray  # (m, d) shared landmarks, serving dtype
    sq_ref: "np.ndarray | None"
    groups: "list[_MemberGroup]"
    n_members: int
    dtype: str

    def _member_predictions(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X)
        out = np.empty((self.n_members, X.shape[0]))
        dt = np.dtype(self.dtype)
        for g in self.groups:
            if self.ref.shape[0] == 0:
                out[g.member_idx] = np.asarray(g.intercepts, dtype=np.float64)[
                    :, None
                ]
                continue
            K = kernel_gram(
                X,
                self.ref,
                kernel=g.kernel,
                gamma=g.gamma,
                degree=g.degree,
                coef0=g.coef0,
                sq_y=self.sq_ref if g.kernel == "rbf" else None,
                dtype=dt,
            )
            P = K @ g.weights
            P += g.intercepts[None, :]
            out[g.member_idx] = P.T  # float64 upcast on assignment
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        # Same sequential member mean as the exact ensemble, so the
        # interval's mean stays bit-identical to ``predict``.
        return BaggingRegressor._member_mean(self._member_predictions(X))

    def predict_interval(
        self, X: np.ndarray, quantile: float = 0.1
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if not 0.0 < quantile < 0.5:
            raise ValueError(f"quantile must be in (0, 0.5), got {quantile}")
        members = self._member_predictions(X)
        lower, upper = np.quantile(members, [quantile, 1.0 - quantile], axis=0)
        return lower, BaggingRegressor._member_mean(members), upper


# ---------------------------------------------------------------------------
# report + wrapper
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MemberStats:
    """Per-member compile statistics for ensemble compiles."""

    n_reference_rows_exact: int
    n_pruned: int
    n_merged: int


@dataclass(frozen=True)
class CompileReport:
    """What compilation did and whether the accuracy gate passed.

    ``reason`` is one of ``"gated-accept"`` (gate scored and passed),
    ``"gate-rejected"`` (gate scored and failed — serving falls back to
    the exact model), ``"ungated"`` (no validation split supplied;
    accepted on trust) and ``"unsupported"`` (the model exposes no
    kernel expansion — e.g. trees, linear models — so the wrapper is a
    pure passthrough).
    """

    accepted: bool
    reason: str
    compile_seconds: float = 0.0
    dtype: str = "float32"
    n_reference_rows_exact: int = 0
    n_reference_rows: int = 0
    n_pruned: int = 0
    n_merged: int = 0
    n_landmarks: int = 0
    smae_exact: "float | None" = None
    smae_compiled: "float | None" = None
    gate_delta: "float | None" = None
    tol: "float | None" = None
    smae_threshold: float = 0.0
    members: "tuple[MemberStats, ...]" = field(default_factory=tuple)


class CompiledPredictor:
    """A fitted model plus (optionally) its compiled serving form.

    ``predict`` uses the compiled form when the compile was accepted
    and delegates to the exact model otherwise, so callers can wrap
    unconditionally: a rejected or unsupported compile is a zero-cost
    passthrough with bit-identical predictions.
    """

    def __init__(
        self, exact: Any, fast: Any, report: CompileReport
    ) -> None:
        self.exact = exact
        self._fast = fast
        self.report = report

    @property
    def compiled(self) -> bool:
        """True when predictions are served by the compiled form."""
        return self._fast is not None

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._fast is None:
            return self.exact.predict(X)
        out = self._fast.predict(X)
        get_metrics().inc("serving.compiled_predictions_total", out.shape[0])
        return out

    def predict_interval(
        self, X: np.ndarray, quantile: float = 0.1
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._fast is not None and hasattr(self._fast, "predict_interval"):
            lower, mean, upper = self._fast.predict_interval(X, quantile)
            get_metrics().inc(
                "serving.compiled_predictions_total", mean.shape[0]
            )
            return lower, mean, upper
        return self.exact.predict_interval(X, quantile)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledPredictor(exact={type(self.exact).__name__}, "
            f"compiled={self.compiled}, reason={self.report.reason!r})"
        )


# ---------------------------------------------------------------------------
# compilation
# ---------------------------------------------------------------------------


def _cast_serving(
    ref: np.ndarray, weights: np.ndarray, kernel: str, dtype: np.dtype
) -> tuple[np.ndarray, np.ndarray, "np.ndarray | None"]:
    """Cast the serving arrays; precompute squared norms for rbf.

    ``ascontiguousarray`` is a no-copy pass-through when the arrays are
    already C-contiguous at the target dtype (the float64 path), so an
    identity compile shares the fitted model's buffers.
    """
    ref = np.ascontiguousarray(ref, dtype=dtype)
    weights = np.ascontiguousarray(weights, dtype=dtype)
    sq_ref = None
    if kernel == "rbf" and ref.shape[0]:
        sq_ref = squared_norms(ref, dtype=dtype)
    return ref, weights, sq_ref


def _compile_single(
    exp: KernelExpansion,
    *,
    budget: int,
    prune_tol: float,
    dtype: np.dtype,
    landmark_seed: int,
) -> "tuple[_CompiledKernel, dict]":
    """Run prune -> merge -> (Nystrom if over budget) -> precision cast."""
    ref, coef, n_pruned = _prune(exp.ref, exp.coef, prune_tol)
    ref, coef, n_merged = _merge_duplicates(ref, coef)
    n_landmarks = 0
    if ref.shape[0] > budget:
        rng = as_rng(landmark_seed)
        idx = np.sort(rng.choice(ref.shape[0], size=budget, replace=False))
        landmarks = ref[idx]
        W = kernel_gram(
            landmarks,
            landmarks,
            kernel=exp.kernel,
            gamma=exp.gamma,
            degree=exp.degree,
            coef0=exp.coef0,
        )
        coef = _nystroem_weights(exp, ref, coef, landmarks, _pinv_psd(W))
        ref = landmarks
        n_landmarks = budget
    ref_s, w_s, sq_ref = _cast_serving(ref, coef, exp.kernel, dtype)
    fast = _CompiledKernel(
        ref=ref_s,
        weights=w_s,
        intercept=exp.intercept,
        kernel=exp.kernel,
        gamma=exp.gamma,
        degree=exp.degree,
        coef0=exp.coef0,
        sq_ref=sq_ref,
        dtype=str(dtype),
    )
    stats = {
        "n_reference_rows_exact": int(exp.ref.shape[0]),
        "n_reference_rows": int(ref_s.shape[0]),
        "n_pruned": n_pruned,
        "n_merged": n_merged,
        "n_landmarks": n_landmarks,
    }
    return fast, stats


def _compile_ensemble(
    model: BaggingRegressor,
    *,
    budget: int,
    prune_tol: float,
    dtype: np.dtype,
    landmark_seed: int,
) -> "tuple[_CompiledEnsemble, dict] | None":
    """Member-wise compile over shared landmarks; None if not kernelized."""
    hooks = [getattr(m, "kernel_expansion", None) for m in model.estimators_]
    if any(h is None for h in hooks):
        return None
    expansions = [h() for h in hooks]

    pruned: "list[tuple[np.ndarray, np.ndarray]]" = []
    member_stats: "list[MemberStats]" = []
    n_pruned_total = n_merged_total = n_exact_total = 0
    for exp in expansions:
        ref, coef, n_p = _prune(exp.ref, exp.coef, prune_tol)
        ref, coef, n_m = _merge_duplicates(ref, coef)
        pruned.append((ref, coef))
        member_stats.append(
            MemberStats(
                n_reference_rows_exact=int(exp.ref.shape[0]),
                n_pruned=n_p,
                n_merged=n_m,
            )
        )
        n_pruned_total += n_p
        n_merged_total += n_m
        n_exact_total += int(exp.ref.shape[0])

    # Shared landmark pool: all (deduplicated) member references.
    # Bootstrap resamples overlap heavily, so the pool is far smaller
    # than the sum of member supports; when it fits the budget the
    # factorization is exact up to the pseudo-inverse cutoff.
    nonempty = [r for r, _ in pruned if r.shape[0]]
    if nonempty:
        pool = np.unique(np.concatenate(nonempty, axis=0), axis=0)
        m = min(budget, pool.shape[0])
        rng = as_rng(landmark_seed)
        idx = np.sort(rng.choice(pool.shape[0], size=m, replace=False))
        landmarks = pool[idx]
    else:
        landmarks = np.empty((0, expansions[0].ref.shape[1]))

    # Per-member Nystrom weights; the landmark Gram W depends only on
    # the kernel parameters, so its pseudo-inverse is cached per
    # parameter tuple (members cloned with numeric gamma share one).
    pinv_cache: "dict[tuple, np.ndarray]" = {}
    member_weights: "list[np.ndarray]" = []
    for exp, (ref, coef) in zip(expansions, pruned):
        key = (exp.kernel, exp.gamma, exp.degree, exp.coef0)
        if key not in pinv_cache:
            W = kernel_gram(
                landmarks,
                landmarks,
                kernel=exp.kernel,
                gamma=exp.gamma,
                degree=exp.degree,
                coef0=exp.coef0,
            )
            pinv_cache[key] = _pinv_psd(W)
        member_weights.append(
            _nystroem_weights(exp, ref, coef, landmarks, pinv_cache[key])
        )

    # Group members with identical kernel parameters: one serving Gram
    # covers the whole group, the member matmul batches their weights.
    ref_s = np.ascontiguousarray(landmarks, dtype=dtype)
    sq_ref = None
    if ref_s.shape[0] and any(e.kernel == "rbf" for e in expansions):
        sq_ref = squared_norms(ref_s, dtype=dtype)
    by_key: "dict[tuple, list[int]]" = {}
    for i, exp in enumerate(expansions):
        by_key.setdefault(
            (exp.kernel, exp.gamma, exp.degree, exp.coef0), []
        ).append(i)
    groups = []
    for (kernel, gamma, degree, coef0), idxs in by_key.items():
        groups.append(
            _MemberGroup(
                kernel=kernel,
                gamma=gamma,
                degree=degree,
                coef0=coef0,
                member_idx=np.asarray(idxs, dtype=np.intp),
                weights=np.ascontiguousarray(
                    np.stack([member_weights[i] for i in idxs], axis=1),
                    dtype=dtype,
                ),
                intercepts=np.asarray(
                    [expansions[i].intercept for i in idxs], dtype=dtype
                ),
            )
        )
    fast = _CompiledEnsemble(
        ref=ref_s,
        sq_ref=sq_ref,
        groups=groups,
        n_members=len(expansions),
        dtype=str(dtype),
    )
    stats = {
        "n_reference_rows_exact": n_exact_total,
        "n_reference_rows": int(ref_s.shape[0]),
        "n_pruned": n_pruned_total,
        "n_merged": n_merged_total,
        "n_landmarks": int(ref_s.shape[0]),
        "members": tuple(member_stats),
    }
    return fast, stats


def compile_predictor(
    model: Any,
    *,
    budget: int = 128,
    tol: "float | None" = None,
    X_val: "np.ndarray | None" = None,
    y_val: "np.ndarray | None" = None,
    smae_threshold: float = 0.0,
    prune_tol: float = 1e-8,
    dtype: "str | np.dtype | type" = "float32",
    landmark_seed: int = 0,
) -> CompiledPredictor:
    """Compile a fitted model into an accuracy-gated serving form.

    Parameters
    ----------
    model : fitted regressor
        Anything exposing ``kernel_expansion()`` (SVR, LS-SVM) or a
        :class:`~repro.ml.ensemble.BaggingRegressor` whose members do.
        Other models (trees, linear) produce a passthrough wrapper.
    budget : int
        Maximum serving reference rows. Expansions over the budget are
        Nystrom-factorized down to ``budget`` landmarks.
    tol : float or None
        Accuracy gate: maximum tolerated S-MAE increase of the compiled
        form over the exact model on the validation split. ``None``
        (or no split) skips the gate and accepts on trust.
    X_val, y_val : arrays or None
        Held-out split the gate scores against.
    smae_threshold : float
        S-MAE insensitivity threshold, in target units (the fitted
        pipeline's ``smae_threshold``; see :mod:`repro.core.evaluation`).
    prune_tol : float
        Relative dual-coefficient cutoff for support-vector pruning.
    dtype : {"float32", "float64"}
        Serving precision. float64 with no pruning/merging/Nystrom
        effect reproduces exact predictions bit-for-bit.
    landmark_seed : int
        Seed for uniform landmark sampling.

    Returns
    -------
    CompiledPredictor
        Wrapper serving compiled predictions when accepted, exact
        otherwise; inspect ``.report`` for what happened.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    dt = np.dtype(dtype)
    if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"dtype must be float32 or float64, got {dtype}")
    if tol is not None and tol < 0:
        raise ValueError(f"tol must be >= 0, got {tol}")

    t0 = time.perf_counter()
    compiled = None
    if isinstance(model, BaggingRegressor) and model.estimators_:
        compiled = _compile_ensemble(
            model,
            budget=budget,
            prune_tol=prune_tol,
            dtype=dt,
            landmark_seed=landmark_seed,
        )
    elif (
        isinstance(model, ScaledModel)
        and model.inner_ is not None
        and hasattr(model.inner_, "kernel_expansion")
    ):
        fast, stats = _compile_single(
            model.inner_.kernel_expansion(),
            budget=budget,
            prune_tol=prune_tol,
            dtype=dt,
            landmark_seed=landmark_seed,
        )
        compiled = (
            _CompiledScaled(
                scaler=model._x_scaler,
                y_scale=model._y_scale,
                y_mean=model._y_mean,
                inner=fast,
            ),
            stats,
        )
    elif hasattr(model, "kernel_expansion"):
        compiled = _compile_single(
            model.kernel_expansion(),
            budget=budget,
            prune_tol=prune_tol,
            dtype=dt,
            landmark_seed=landmark_seed,
        )

    metrics = get_metrics()
    if compiled is None:
        report = CompileReport(
            accepted=False,
            reason="unsupported",
            compile_seconds=time.perf_counter() - t0,
            dtype=str(dt),
        )
        metrics.inc("serving.compile_rejected_total")
        return CompiledPredictor(model, None, report)

    fast, stats = compiled
    smae_exact = smae_compiled = gate_delta = None
    if tol is not None and X_val is not None:
        if y_val is None:
            raise ValueError("gated compile needs y_val alongside X_val")
        y_val = np.asarray(y_val, dtype=np.float64)
        smae_exact = soft_mean_absolute_error(
            y_val, model.predict(X_val), smae_threshold
        )
        smae_compiled = soft_mean_absolute_error(
            y_val, fast.predict(X_val), smae_threshold
        )
        gate_delta = smae_compiled - smae_exact
        accepted = gate_delta <= tol
        reason = "gated-accept" if accepted else "gate-rejected"
    else:
        accepted = True
        reason = "ungated"

    seconds = time.perf_counter() - t0
    report = CompileReport(
        accepted=accepted,
        reason=reason,
        compile_seconds=seconds,
        dtype=str(dt),
        smae_exact=smae_exact,
        smae_compiled=smae_compiled,
        gate_delta=gate_delta,
        tol=tol,
        smae_threshold=smae_threshold,
        **stats,
    )
    metrics.observe("serving.compile_seconds", seconds)
    metrics.inc(
        "serving.compile_accepted_total"
        if accepted
        else "serving.compile_rejected_total"
    )
    if report.n_pruned:
        metrics.inc("serving.pruned_sv_total", report.n_pruned)
    metrics.set_gauge("serving.landmarks", report.n_landmarks)
    if gate_delta is not None:
        metrics.set_gauge("serving.gate_delta", gate_delta)
    return CompiledPredictor(model, fast if accepted else None, report)
