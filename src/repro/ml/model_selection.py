"""Data splitting and cross-validation.

F2PM's validation phase holds out a validation set from the aggregated
training data (paper Sec. III-D). The splitters here support both the
simple shuffled split the experiments use and k-fold cross-validation for
the extended model-comparison utilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.ml.base import Regressor, clone
from repro.ml.metrics import mean_absolute_error
from repro.utils.rng import as_rng
from repro.utils.validation import check_consistent_length


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    test_size: float = 0.25,
    shuffle: bool = True,
    seed: int | None | np.random.Generator = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split ``(X, y)`` into train and test partitions.

    Parameters
    ----------
    test_size : float
        Fraction of samples assigned to the test partition, in ``(0, 1)``.
        At least one sample always lands on each side.
    shuffle : bool
        If False the split is a temporal head/tail split — important for
        time-series-flavoured data where shuffling would leak future
        samples into training.
    seed : int, Generator or None
        Randomness source for shuffling.

    Returns ``(X_train, X_test, y_train, y_test)``.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    check_consistent_length(X, y)
    n = X.shape[0]
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    n_test = min(max(int(round(n * test_size)), 1), n - 1)
    if shuffle:
        perm = as_rng(seed).permutation(n)
    else:
        perm = np.arange(n)
    test_idx = perm[n - n_test :]
    train_idx = perm[: n - n_test]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


@dataclass
class KFold:
    """K-fold cross-validation index generator.

    Yields ``(train_idx, test_idx)`` pairs. With ``shuffle=True`` the
    sample order is permuted once before folding.
    """

    n_splits: int = 5
    shuffle: bool = False
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {self.n_splits}")

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            indices = as_rng(self.seed).permutation(n_samples)
        # Spread the remainder over the first folds, sklearn-style.
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=int)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test_idx = indices[start : start + size]
            train_idx = np.concatenate([indices[:start], indices[start + size :]])
            yield train_idx, test_idx
            start += size


@dataclass
class CVResult:
    """Per-fold scores from :func:`cross_validate`."""

    scores: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.scores))

    @property
    def std(self) -> float:
        return float(np.std(self.scores))


def cross_validate(
    estimator: Regressor,
    X: np.ndarray,
    y: np.ndarray,
    *,
    cv: KFold | None = None,
    scorer: Callable[[np.ndarray, np.ndarray], float] = mean_absolute_error,
) -> CVResult:
    """Evaluate *estimator* by k-fold cross-validation.

    A fresh clone is fitted per fold; *scorer* maps
    ``(y_true, y_pred) -> float`` (default MAE, lower is better).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    check_consistent_length(X, y)
    cv = cv or KFold()
    result = CVResult()
    for train_idx, test_idx in cv.split(X.shape[0]):
        model = clone(estimator)
        model.fit(X[train_idx], y[train_idx])
        result.scores.append(float(scorer(y[test_idx], model.predict(X[test_idx]))))
    return result


@dataclass
class GridSearchResult:
    """Outcome of :class:`GridSearchCV`: per-candidate CV scores."""

    params: list[dict]
    results: list[CVResult]
    best_index: int

    @property
    def best_params(self) -> dict:
        return self.params[self.best_index]

    @property
    def best_score(self) -> float:
        return self.results[self.best_index].mean


class GridSearchCV:
    """Exhaustive hyper-parameter search by cross-validation.

    The paper leaves hyper-parameter choice to the user; this utility
    automates it for any zoo method. The grid is a mapping from parameter
    name to candidate values; every combination is cross-validated and
    the lowest mean score (default MAE) wins.

    Example::

        search = GridSearchCV(Lasso(), {"lam": [0.01, 0.1, 1.0]})
        result = search.fit(X, y)
        best = Lasso(**result.best_params).fit(X, y)
    """

    def __init__(
        self,
        estimator: Regressor,
        param_grid: dict,
        *,
        cv: KFold | None = None,
        scorer: Callable[[np.ndarray, np.ndarray], float] = mean_absolute_error,
    ) -> None:
        if not param_grid:
            raise ValueError("param_grid must contain at least one parameter")
        for name, values in param_grid.items():
            if not list(values):
                raise ValueError(f"parameter {name!r} has no candidate values")
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv or KFold()
        self.scorer = scorer

    def _combinations(self) -> Iterator[dict]:
        names = sorted(self.param_grid)
        def rec(i: int, current: dict):
            if i == len(names):
                yield dict(current)
                return
            for value in self.param_grid[names[i]]:
                current[names[i]] = value
                yield from rec(i + 1, current)
        yield from rec(0, {})

    def fit(self, X: np.ndarray, y: np.ndarray) -> GridSearchResult:
        params: list[dict] = []
        results: list[CVResult] = []
        for combo in self._combinations():
            candidate = clone(self.estimator).set_params(**combo)
            params.append(combo)
            results.append(
                cross_validate(candidate, X, y, cv=self.cv, scorer=self.scorer)
            )
        best = int(np.argmin([r.mean for r in results]))
        return GridSearchResult(params=params, results=results, best_index=best)
