"""Least-Squares Support Vector Machine regression (Suykens & Vandewalle).

The paper's sixth method ("SVM2" in its Tables II-IV). LS-SVM replaces the
SVM's inequality constraints with equality constraints and a squared-error
loss, so training reduces to one symmetric linear system::

    [ 0    1'        ] [ b     ]   [ 0 ]
    [ 1    K + I/gam ] [ alpha ] = [ y ]

Prediction is ``f(x) = sum_i alpha_i K(x_i, x) + b``. Every training point
becomes a "support vector" (alpha is dense) — the classic LS-SVM
trade-off: much cheaper training than SMO, no sparsity.

The system is solved with a symmetric-indefinite factorization
(``scipy.linalg.solve(assume_a="sym")``); for ill-conditioned kernels a
tiny jitter is added to the diagonal and the solve retried.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.ml.base import Regressor
from repro.ml.kernels import (
    KernelExpansion,
    rbf_kernel,
    resolve_gamma,
    resolve_kernel,
    squared_norms,
)
from repro.utils.validation import check_array, check_is_fitted, check_X_y


class LSSVMRegressor(Regressor):
    """Least-squares SVM for regression.

    Parameters
    ----------
    gam : float
        Regularization constant gamma (larger fits harder; the ridge term
        on the kernel diagonal is ``1/gam``).
    kernel : {"rbf", "linear", "poly"}
    gamma : float or "scale"
        Kernel coefficient (RBF width / poly scale).
    degree, coef0 :
        Polynomial kernel parameters.

    Attributes
    ----------
    alpha_ : (n,) dual weights (dense).
    intercept_ : float bias term b.
    """

    def __init__(
        self,
        gam: float = 10.0,
        kernel: str = "rbf",
        gamma: "float | str" = "scale",
        degree: int = 3,
        coef0: float = 1.0,
    ) -> None:
        if gam <= 0:
            raise ValueError(f"gam must be positive, got {gam}")
        self.gam = gam
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.alpha_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LSSVMRegressor":
        X, y = check_X_y(X, y)
        n = X.shape[0]
        gamma = resolve_gamma(self.gamma, X)
        self._kernel = resolve_kernel(
            self.kernel, gamma=gamma, degree=self.degree, coef0=self.coef0
        )
        K = self._kernel(X, X)
        A = np.empty((n + 1, n + 1))
        A[0, 0] = 0.0
        A[0, 1:] = 1.0
        A[1:, 0] = 1.0
        A[1:, 1:] = K
        idx = np.arange(1, n + 1)
        A[idx, idx] += 1.0 / self.gam
        rhs = np.empty(n + 1)
        rhs[0] = 0.0
        rhs[1:] = y
        try:
            sol = scipy.linalg.solve(A, rhs, assume_a="sym")
        except (scipy.linalg.LinAlgError, np.linalg.LinAlgError):
            A[idx, idx] += 1e-8 * (1.0 + np.abs(A[idx, idx]))
            sol = scipy.linalg.solve(A, rhs, assume_a="sym")
        self.intercept_ = float(sol[0])
        self.alpha_ = sol[1:]
        self._X_train = X
        self._gamma_ = gamma
        # LS-SVM keeps every training row as a "support vector"; cache
        # their squared norms for the RBF predict fast path.
        self._train_sq_norms_ = (
            squared_norms(X) if self.kernel == "rbf" else None
        )
        return self

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # resolve_kernel returns a closure (unpicklable); predict
        # rebuilds it on demand from the stored hyperparameters.
        state.pop("_kernel", None)
        return state

    def kernel_expansion(self) -> KernelExpansion:
        """The fitted dual form, for the serving compiler
        (:mod:`repro.ml.serving`).

        LS-SVM's expansion keeps *every* training row as a reference —
        exactly why compiled (low-rank) serving matters most here.
        """
        check_is_fitted(self, "alpha_")
        return KernelExpansion(
            ref=self._X_train,
            coef=self.alpha_,
            intercept=self.intercept_,
            kernel=self.kernel,
            gamma=self._gamma_,
            degree=self.degree,
            coef0=self.coef0,
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "alpha_")
        X = check_array(X)
        if X.shape[1] != self._X_train.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted on "
                f"{self._X_train.shape[1]}"
            )
        # getattr: models pickled before norm caching lack the attribute
        train_sq = getattr(self, "_train_sq_norms_", None)
        if self.kernel == "rbf" and train_sq is not None:
            K = rbf_kernel(X, self._X_train, gamma=self._gamma_, sq_y=train_sq)
        else:
            kernel = getattr(self, "_kernel", None)
            if kernel is None:  # unpickled model: rebuild the closure
                kernel = self._kernel = resolve_kernel(
                    self.kernel,
                    gamma=self._gamma_,
                    degree=self.degree,
                    coef0=self.coef0,
                )
            K = kernel(X, self._X_train)
        return K @ self.alpha_ + self.intercept_
