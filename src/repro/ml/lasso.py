"""Lasso regression via cyclic coordinate descent (Tibshirani 1994).

The paper uses the Lasso twice (Sec. III-C/III-D):

1. **Regularization** — for each lambda in a grid, fit the Lasso and drop
   every feature whose weight is exactly zero; the surviving features form
   a reduced training set (Fig. 4, Table I).
2. **As a predictor** — the beta vector found for a given lambda *is* the
   model, evaluated as a closed-form linear equation (Table II's
   ``Lasso (lambda = 10^k)`` rows).

Objective (paper Eq. 2)::

    (1/n) * sum_j (y_j - <beta, x_j>)^2  +  lambda * ||beta||_1

Coordinate descent updates one coefficient at a time with the
soft-threshold rule ``beta_k = S(x_k . r_k, n*lambda/2) / ||x_k||^2``
where ``r_k`` is the partial residual excluding feature k. Residuals are
maintained in place, so a full sweep is O(n*p). Convergence is declared
when the largest coefficient change in a sweep falls below ``tol``.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor
from repro.utils.validation import check_array, check_is_fitted, check_X_y


def _soft_threshold(value: float, threshold: float) -> float:
    """The soft-thresholding (shrinkage) operator S(value, threshold)."""
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


def _coordinate_descent(
    X: np.ndarray,
    y: np.ndarray,
    lam: float,
    max_iter: int,
    tol: float,
    coef_init: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Minimize the paper's Eq. 2 objective. Returns (coef, n_sweeps)."""
    n, p = X.shape
    sq_norms = np.einsum("ij,ij->j", X, X)
    coef = np.zeros(p) if coef_init is None else coef_init.copy()
    # Residual r = y - X @ coef, maintained incrementally.
    residual = y - X @ coef if coef_init is not None else y.copy()
    # Eq. 2 divides the quadratic term by n, so the per-coordinate
    # threshold is n*lambda/2.
    threshold = 0.5 * n * lam
    n_sweeps = 0
    for sweep in range(max_iter):
        n_sweeps = sweep + 1
        max_delta = 0.0
        for k in range(p):
            if sq_norms[k] == 0.0:
                continue  # constant (all-zero after centring) feature
            old = coef[k]
            # rho = x_k . (residual + x_k * old) without forming the sum.
            rho = X[:, k] @ residual + sq_norms[k] * old
            new = _soft_threshold(rho, threshold) / sq_norms[k]
            if new != old:
                residual += X[:, k] * (old - new)
                coef[k] = new
                max_delta = max(max_delta, abs(new - old))
        if max_delta <= tol:
            break
    return coef, n_sweeps


class Lasso(Regressor):
    """L1-regularized linear regression (paper Eq. 2 objective).

    Parameters
    ----------
    lam : float
        Regularization strength lambda (the paper sweeps 10^0 .. 10^9).
    fit_intercept : bool
        Learn an unpenalized intercept by centring (default True).
    normalize : bool
        If True, internally scale features to unit standard deviation
        before the solve and fold the scaling back into ``coef_``. The
        paper's experiments run on raw feature scales (hence the tiny
        weights in its Table I), so the default is False.
    max_iter, tol :
        Coordinate-descent sweep limit and convergence threshold (max
        absolute coefficient change per sweep).

    Attributes
    ----------
    coef_ : (p,) weights on the original feature scale.
    intercept_ : float
    n_iter_ : sweeps used by the last fit.
    """

    def __init__(
        self,
        lam: float = 1.0,
        fit_intercept: bool = True,
        normalize: bool = False,
        max_iter: int = 1000,
        tol: float = 1e-8,
    ) -> None:
        if lam < 0:
            raise ValueError(f"lam must be non-negative, got {lam}")
        self.lam = lam
        self.fit_intercept = fit_intercept
        self.normalize = normalize
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Lasso":
        X, y = check_X_y(X, y)
        Xw, yw, x_mean, y_mean, x_scale = self._prepare(X, y)
        coef, self.n_iter_ = _coordinate_descent(
            Xw, yw, self.lam, self.max_iter, self.tol
        )
        self.coef_ = coef / x_scale
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def _prepare(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float, np.ndarray]:
        p = X.shape[1]
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            Xw = X - x_mean
            yw = y - y_mean
        else:
            x_mean = np.zeros(p)
            y_mean = 0.0
            Xw, yw = X.copy(), y.copy()
        if self.normalize:
            x_scale = Xw.std(axis=0)
            x_scale[x_scale == 0.0] = 1.0
            Xw = Xw / x_scale
        else:
            x_scale = np.ones(p)
        return Xw, yw, x_mean, y_mean, x_scale

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = check_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted on "
                f"{self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_

    @property
    def selected_features_(self) -> np.ndarray:
        """Indices of features with non-zero weight (the Lasso selection)."""
        check_is_fitted(self, "coef_")
        return np.flatnonzero(self.coef_)


def lasso_path(
    X: np.ndarray,
    y: np.ndarray,
    lambdas: np.ndarray,
    *,
    fit_intercept: bool = True,
    normalize: bool = False,
    max_iter: int = 1000,
    tol: float = 1e-8,
) -> np.ndarray:
    """Fit the Lasso along a lambda grid with warm starts.

    Lambdas are visited from largest to smallest (coefficients grow as
    lambda shrinks, so warm-starting from the sparser solution converges
    quickly); results are returned in the caller's original order.

    Returns a ``(len(lambdas), p)`` matrix of coefficient vectors on the
    original feature scale.
    """
    X, y = check_X_y(X, y)
    lambdas = check_array(np.asarray(lambdas, dtype=np.float64), ndim=1, name="lambdas")
    if (lambdas < 0).any():
        raise ValueError("lambdas must be non-negative")
    proto = Lasso(
        fit_intercept=fit_intercept, normalize=normalize, max_iter=max_iter, tol=tol
    )
    Xw, yw, _x_mean, _y_mean, x_scale = proto._prepare(X, y)

    order = np.argsort(lambdas)[::-1]
    coefs = np.zeros((lambdas.shape[0], X.shape[1]))
    warm: np.ndarray | None = None
    for idx in order:
        coef, _ = _coordinate_descent(
            Xw, yw, float(lambdas[idx]), max_iter, tol, coef_init=warm
        )
        warm = coef
        coefs[idx] = coef / x_scale
    return coefs
