"""Model-agnostic feature-importance inspection.

The paper ranks features by Lasso weight (Table I) — a view tied to one
linear model. Permutation importance asks the same question of *any*
fitted model: how much does the validation error grow when one feature's
column is shuffled (breaking its relationship with the target while
preserving its marginal distribution)? Features the model actually relies
on produce large increases; ignored features produce none.

Used by the inspection example to cross-check the Lasso selection
against what the winning tree model actually consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.ml.base import Regressor
from repro.ml.metrics import mean_absolute_error
from repro.utils.rng import as_rng
from repro.utils.validation import check_X_y


@dataclass(frozen=True)
class PermutationImportance:
    """Importance of every feature: error increase under permutation."""

    importances_mean: np.ndarray  # (p,)
    importances_std: np.ndarray  # (p,)
    baseline_score: float
    feature_names: "tuple[str, ...] | None" = None

    def ranking(self) -> list[tuple[str, float]]:
        """(name, mean importance) pairs, most important first."""
        order = np.argsort(self.importances_mean)[::-1]
        names = (
            self.feature_names
            if self.feature_names is not None
            else tuple(f"x[{i}]" for i in range(self.importances_mean.size))
        )
        return [(names[i], float(self.importances_mean[i])) for i in order]

    def top(self, k: int) -> tuple[str, ...]:
        """Names of the k most important features."""
        return tuple(name for name, _ in self.ranking()[:k])


def permutation_importance(
    model: Regressor,
    X: np.ndarray,
    y: np.ndarray,
    *,
    n_repeats: int = 5,
    scorer: Callable[[np.ndarray, np.ndarray], float] = mean_absolute_error,
    feature_names: "Sequence[str] | None" = None,
    seed: "int | None" = 0,
) -> PermutationImportance:
    """Compute permutation importances of *model* on ``(X, y)``.

    Importance of feature j = mean over repeats of
    ``scorer(y, model.predict(X with column j permuted)) - baseline``.
    The model must already be fitted; it is never refitted.
    """
    if n_repeats < 1:
        raise ValueError(f"n_repeats must be >= 1, got {n_repeats}")
    X, y = check_X_y(X, y)
    if feature_names is not None and len(feature_names) != X.shape[1]:
        raise ValueError(
            f"{len(feature_names)} names for {X.shape[1]} features"
        )
    rng = as_rng(seed)
    baseline = float(scorer(y, model.predict(X)))
    p = X.shape[1]
    scores = np.empty((p, n_repeats))
    X_work = X.copy()
    for j in range(p):
        original = X_work[:, j].copy()
        for r in range(n_repeats):
            X_work[:, j] = original[rng.permutation(X.shape[0])]
            scores[j, r] = scorer(y, model.predict(X_work)) - baseline
        X_work[:, j] = original
    return PermutationImportance(
        importances_mean=scores.mean(axis=1),
        importances_std=scores.std(axis=1),
        baseline_score=baseline,
        feature_names=tuple(feature_names) if feature_names is not None else None,
    )
