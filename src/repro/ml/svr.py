"""Epsilon-insensitive Support Vector Regression via SMO.

This is the paper's "SVM" method (Sec. III-D, WEKA's SMOreg). The dual
problem is solved with a from-scratch Sequential Minimal Optimization
solver in the LIBSVM formulation:

The epsilon-SVR dual over ``alpha, alpha*`` is folded into a single
2n-variable box-constrained QP::

    min_a  1/2 a' Q a + p' a
    s.t.   z' a = 0,   0 <= a_t <= C

with ``z = (+1,...,+1, -1,...,-1)``, ``Q[s,t] = z_s z_t K(s%n, t%n)``,
``p = (eps - y, eps + y)``. The regression coefficients are
``beta = a[:n] - a[n:]`` and the prediction is
``f(x) = sum_i beta_i K(x_i, x) + b``.

The solver uses maximal-violating-pair working-set selection (Keerthi
WSS1) with the analytic two-variable update, maintaining the gradient
incrementally — one kernel-matrix column per iteration. Kernel columns
are computed on demand through a bounded FIFO cache (LIBSVM's kernel
cache), so memory stays O(cache_columns * n) and training cost scales
with the feature count; Q columns are materialized on the fly from the
block structure.

Complexity is the reason the paper's Table III shows SVM training two to
three orders of magnitude slower than the tree learners; the same gap
reproduces here.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor
from repro.ml.kernels import (
    KernelExpansion,
    rbf_kernel,
    resolve_gamma,
    resolve_kernel,
    resolve_kernel_diag,
    squared_norms,
)
from repro.utils.validation import check_array, check_is_fitted, check_X_y

_TAU = 1e-12


class _KernelColumnCache:
    """LIBSVM-style kernel cache: columns of K computed on demand.

    Computing columns lazily (one ``K[:, t] = k(X, x_t)`` per working-set
    index, FIFO-bounded cache) keeps memory at O(cache * n) instead of
    O(n^2) and — deliberately — makes the training cost proportional to
    the feature count, reproducing the paper's Table III observation that
    Lasso-selected feature sets train the SVM substantially faster.
    """

    def __init__(self, X: np.ndarray, kernel, max_columns: int = 512) -> None:
        self.X = X
        self.kernel = kernel
        self.max_columns = max(1, max_columns)
        self._columns: dict[int, np.ndarray] = {}

    def column(self, t: int) -> np.ndarray:
        col = self._columns.get(t)
        if col is None:
            col = self.kernel(self.X, self.X[t : t + 1])[:, 0]
            if len(self._columns) >= self.max_columns:
                # FIFO eviction: drop the oldest inserted column.
                self._columns.pop(next(iter(self._columns)))
            self._columns[t] = col
        return col


class _SMOSolver:
    """LIBSVM-style SMO for ``min 1/2 a'Qa + p'a, z'a = 0, 0 <= a <= C``."""

    def __init__(
        self,
        cache: _KernelColumnCache,
        n: int,
        p: np.ndarray,
        z: np.ndarray,
        C: float,
        tol: float,
        max_iter: int,
        k_diag: np.ndarray,
    ) -> None:
        self.cache = cache
        self.n = n
        self.p = p
        self.z = z
        self.C = C
        self.tol = tol
        self.max_iter = max_iter
        # Diagonal of Q: Q_tt = z_t^2 K_tt = K_tt, duplicated for both blocks.
        self.QD = np.concatenate([k_diag, k_diag])

    #: Re-examine the active set every this many inner iterations.
    SHRINK_PERIOD = 1000

    def _q_column_active(
        self, t_global: int, active_mod: np.ndarray, z_active: np.ndarray
    ) -> np.ndarray:
        """Entries ``Q[active, t]`` without materializing Q.

        ``Q[s, t] = z_s z_t K[s%n, t%n]``; one cached kernel column serves
        both blocks.
        """
        col = self.cache.column(t_global % self.n)
        return (self.z[t_global] * z_active) * col[active_mod]

    def _full_gradient(self, a: np.ndarray) -> np.ndarray:
        """Reconstruct G = Qa + p from scratch (unshrinking step).

        Uses only the support columns: O(n * nSV) kernel work.
        """
        n = self.n
        beta = a[:n] - a[n:]
        sv = np.flatnonzero(beta)
        G = self.p.copy()
        if sv.size:
            kb = self.cache.kernel(self.cache.X, self.cache.X[sv]) @ beta[sv]
            G[:n] += kb
            G[n:] -= kb
        return G

    def solve(self) -> tuple[np.ndarray, float, int]:
        """Run SMO with shrinking. Returns (a, rho, n_iter); bias = -rho.

        The solver iterates on a shrinking *active set*: variables pinned
        at a bound with no prospect of violating the KKT conditions are
        dropped from the working-set search. Whenever the active problem
        converges, the full gradient is reconstructed and the global KKT
        gap checked — shrinking is a heuristic; the final answer always
        satisfies the full-problem stopping rule (or the iteration cap).
        """
        m2 = 2 * self.n
        a = np.zeros(m2)
        G = self.p.copy()  # gradient of the objective at a = 0
        z = self.z
        C = self.C
        tol = self.tol
        n_iter = 0
        neg_inf = -np.inf

        active = np.arange(m2)
        while True:
            # Views over the active set (copied; written back on exit).
            act_mod = active % self.n
            za = z[active]
            aa = a[active]
            Ga = G[active]
            QDa = self.QD[active]
            pos = za > 0
            budget = self.SHRINK_PERIOD
            converged_active = False
            last_m = np.inf
            last_M = -np.inf

            while n_iter < self.max_iter and budget > 0:
                g = -(za * Ga)
                up_mask = np.where(pos, aa < C, aa > 0.0)
                low_mask = np.where(pos, aa > 0.0, aa < C)
                up_vals = np.where(up_mask, g, neg_inf)
                i = int(np.argmax(up_vals))
                g_i = float(up_vals[i])
                low_vals = np.where(low_mask, g, np.inf)
                last_m, last_M = g_i, float(np.min(low_vals))
                if g_i - last_M < tol:
                    converged_active = True
                    break
                n_iter += 1
                budget -= 1

                # Second-order working-set selection (LIBSVM WSS2).
                Qi = self._q_column_active(int(active[i]), act_mod, za)
                b_t = g_i - g
                cand = low_mask & (b_t > 0.0)
                denom = QDa[i] + QDa - 2.0 * Qi
                np.maximum(denom, _TAU, out=denom)
                obj = np.where(cand, -(b_t * b_t) / denom, np.inf)
                j = int(np.argmin(obj))
                Qj = self._q_column_active(int(active[j]), act_mod, za)
                old_ai, old_aj = aa[i], aa[j]

                if za[i] != za[j]:
                    quad = Qi[i] + Qj[j] + 2.0 * Qi[j]
                    if quad <= 0.0:
                        quad = _TAU
                    delta = (-Ga[i] - Ga[j]) / quad
                    diff = aa[i] - aa[j]
                    aa[i] += delta
                    aa[j] += delta
                    if diff > 0.0:
                        if aa[j] < 0.0:
                            aa[j] = 0.0
                            aa[i] = diff
                    else:
                        if aa[i] < 0.0:
                            aa[i] = 0.0
                            aa[j] = -diff
                    if diff > 0.0:  # C_i == C_j == C
                        if aa[i] > C:
                            aa[i] = C
                            aa[j] = C - diff
                    else:
                        if aa[j] > C:
                            aa[j] = C
                            aa[i] = C + diff
                else:
                    quad = Qi[i] + Qj[j] - 2.0 * Qi[j]
                    if quad <= 0.0:
                        quad = _TAU
                    delta = (Ga[i] - Ga[j]) / quad
                    total = aa[i] + aa[j]
                    aa[i] -= delta
                    aa[j] += delta
                    if total > C:
                        if aa[i] > C:
                            aa[i] = C
                            aa[j] = total - C
                    else:
                        if aa[j] < 0.0:
                            aa[j] = 0.0
                            aa[i] = total
                    if total > C:
                        if aa[j] > C:
                            aa[j] = C
                            aa[i] = total - C
                    else:
                        if aa[i] < 0.0:
                            aa[i] = 0.0
                            aa[j] = total

                # Incremental gradient update on the active set.
                Ga += Qi * (aa[i] - old_ai) + Qj * (aa[j] - old_aj)

            # Write the active block back into the full vectors.
            a[active] = aa
            G[active] = Ga

            if converged_active or n_iter >= self.max_iter:
                # Unshrink: rebuild the full gradient and re-check globally.
                G = self._full_gradient(a)
                g = -(z * G)
                up_mask = np.where(z > 0, a < C, a > 0.0)
                low_mask = np.where(z > 0, a > 0.0, a < C)
                g_max = float(np.max(np.where(up_mask, g, neg_inf)))
                g_min = float(np.min(np.where(low_mask, g, np.inf)))
                if g_max - g_min < tol or n_iter >= self.max_iter:
                    break
                active = np.arange(m2)  # restart on the full problem
                continue

            # Shrink: keep free variables and bound variables that can
            # still violate the KKT conditions at the current (m, M).
            g = -(za * Ga)
            free = (aa > 0.0) & (aa < C)
            up_mask = np.where(pos, aa < C, aa > 0.0)
            low_mask = np.where(pos, aa > 0.0, aa < C)
            keep = free | (up_mask & (g > last_M)) | (low_mask & (g < last_m))
            if keep.sum() < 2:
                keep[:] = True
            active = active[keep]

        rho = self._calculate_rho(a, G)
        return a, rho, n_iter

    def _calculate_rho(self, a: np.ndarray, G: np.ndarray) -> float:
        """LIBSVM rho: average z*G over free variables, else midpoint."""
        zG = self.z * G
        free = (a > 0.0) & (a < self.C)
        if free.any():
            return float(zG[free].mean())
        at_upper = a >= self.C
        at_lower = a <= 0.0
        # Upper bound candidates: z=-1 at C, or z=+1 at 0.
        ub_mask = (at_upper & (self.z < 0)) | (at_lower & (self.z > 0))
        lb_mask = (at_upper & (self.z > 0)) | (at_lower & (self.z < 0))
        ub = float(zG[ub_mask].min()) if ub_mask.any() else np.inf
        lb = float(zG[lb_mask].max()) if lb_mask.any() else -np.inf
        if not np.isfinite(ub) or not np.isfinite(lb):
            return 0.0
        return (ub + lb) / 2.0


class SVR(Regressor):
    """Epsilon-insensitive Support Vector Regression.

    Parameters
    ----------
    C : float
        Box constraint (regularization strength; larger fits harder).
    epsilon : float
        Width of the insensitive tube in target units.
    kernel : {"rbf", "linear", "poly"}
    gamma : float or "scale"
        RBF/poly kernel coefficient; "scale" uses the LIBSVM
        ``1/(p * var(X))`` rule.
    degree, coef0 :
        Polynomial kernel parameters.
    tol : float
        KKT violation tolerance for the SMO stopping rule.
    max_iter : int
        Hard cap on SMO iterations.
    cache_columns : int
        Kernel-cache capacity (columns kept resident).

    Attributes
    ----------
    support_ : indices of support vectors (non-zero dual coefficients).
    dual_coef_ : beta values at the support vectors.
    intercept_ : float bias.
    n_iter_ : SMO iterations used.
    """

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.1,
        kernel: str = "rbf",
        gamma: "float | str" = "scale",
        degree: int = 3,
        coef0: float = 1.0,
        tol: float = 1e-3,
        max_iter: int = 100_000,
        cache_columns: int = 512,
    ) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        self.C = C
        self.epsilon = epsilon
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.coef0 = coef0
        self.tol = tol
        self.max_iter = max_iter
        self.cache_columns = cache_columns
        self.support_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def _kernel_fn(self, X: np.ndarray):
        gamma = resolve_gamma(self.gamma, X)
        return resolve_kernel(
            self.kernel, gamma=gamma, degree=self.degree, coef0=self.coef0
        )

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVR":
        X, y = check_X_y(X, y)
        n = X.shape[0]
        self._kernel = self._kernel_fn(X)
        cache = _KernelColumnCache(X, self._kernel, max_columns=self.cache_columns)
        p = np.concatenate([self.epsilon - y, self.epsilon + y])
        z = np.concatenate([np.ones(n), -np.ones(n)])
        gamma = resolve_gamma(self.gamma, X)
        k_diag = resolve_kernel_diag(
            self.kernel, gamma=gamma, degree=self.degree, coef0=self.coef0
        )(X)
        solver = _SMOSolver(
            cache, n, p, z, self.C, self.tol, self.max_iter, k_diag
        )
        a, rho, self.n_iter_ = solver.solve()
        beta = a[:n] - a[n:]
        support = np.flatnonzero(np.abs(beta) > 1e-12)
        self.support_ = support
        self.support_vectors_ = X[support]
        self.dual_coef_ = beta[support]
        self.intercept_ = -rho
        self._n_features = X.shape[1]
        self._gamma_ = gamma
        # Support vectors are frozen at fit time, so their squared norms
        # (half of the RBF distance expansion) are too.
        self._sv_sq_norms_ = (
            squared_norms(self.support_vectors_) if self.kernel == "rbf" else None
        )
        return self

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # resolve_kernel returns a closure (unpicklable); predict
        # rebuilds it on demand from the stored hyperparameters.
        state.pop("_kernel", None)
        return state

    def kernel_expansion(self) -> KernelExpansion:
        """The fitted dual form, for the serving compiler
        (:mod:`repro.ml.serving`)."""
        check_is_fitted(self, "dual_coef_")
        return KernelExpansion(
            ref=self.support_vectors_,
            coef=self.dual_coef_,
            intercept=self.intercept_,
            kernel=self.kernel,
            gamma=self._gamma_,
            degree=self.degree,
            coef0=self.coef0,
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "dual_coef_")
        X = check_array(X)
        if X.shape[1] != self._n_features:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted on {self._n_features}"
            )
        if self.support_.size == 0:
            return np.full(X.shape[0], self.intercept_)
        # getattr: models pickled before norm caching lack the attribute
        sv_sq = getattr(self, "_sv_sq_norms_", None)
        if self.kernel == "rbf" and sv_sq is not None:
            K = rbf_kernel(
                X, self.support_vectors_, gamma=self._gamma_, sq_y=sv_sq
            )
        else:
            kernel = getattr(self, "_kernel", None)
            if kernel is None:  # unpickled model: rebuild the closure
                kernel = self._kernel = resolve_kernel(
                    self.kernel,
                    gamma=self._gamma_,
                    degree=self.degree,
                    coef0=self.coef0,
                )
            K = kernel(X, self.support_vectors_)
        return K @ self.dual_coef_ + self.intercept_
