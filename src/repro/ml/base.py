"""Estimator protocol shared by every learner in :mod:`repro.ml`.

All learners follow the fit/predict convention:

- hyper-parameters are constructor arguments stored verbatim on ``self``;
- ``fit(X, y)`` learns state into attributes suffixed with ``_`` and
  returns ``self``;
- ``predict(X)`` maps an ``(n, p)`` matrix to an ``(n,)`` vector;
- ``get_params()`` / ``clone()`` allow re-instantiating an unfitted copy,
  which the F2PM model zoo and cross-validation rely on.
"""

from __future__ import annotations

import functools
import inspect
import time
from abc import ABC, abstractmethod
from typing import Any, Callable

import numpy as np

from repro.obs.metrics import get_metrics
from repro.utils.validation import check_X_y


def _timed(kind: str, cls_name: str, fn: Callable) -> Callable:
    """Wrap a concrete fit/predict with a latency-histogram hook.

    Records ``ml.{fit,predict}_seconds.<ClassName>`` on the process
    registry (plus a served-prediction row counter for predict). When
    metrics are disabled the hook is a single attribute check.
    """

    @functools.wraps(fn)
    def wrapper(self, X, *args, **kwargs):  # noqa: ANN001 - mirrors fn
        registry = get_metrics()
        if not registry.enabled:
            return fn(self, X, *args, **kwargs)
        start = time.perf_counter()
        out = fn(self, X, *args, **kwargs)
        registry.observe(
            f"ml.{kind}_seconds.{cls_name}", time.perf_counter() - start
        )
        if kind == "predict":
            n_rows = getattr(X, "shape", (len(X),))[0]
            registry.inc("ml.predictions_total", float(n_rows))
        return out

    wrapper._obs_wrapped = True  # type: ignore[attr-defined]
    return wrapper


class Regressor(ABC):
    """Abstract base class for all regression learners."""

    def __init_subclass__(cls, **kwargs: Any) -> None:
        # Timing hooks: every concrete fit/predict defined by a subclass
        # is wrapped exactly once so per-model latency histograms come
        # for free, without touching the learners themselves.
        super().__init_subclass__(**kwargs)
        for method in ("fit", "predict"):
            impl = cls.__dict__.get(method)
            if (
                impl is not None
                and callable(impl)
                and not getattr(impl, "__isabstractmethod__", False)
                and not getattr(impl, "_obs_wrapped", False)
            ):
                setattr(cls, method, _timed(method, cls.__name__, impl))

    @abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor":
        """Learn model state from ``(n, p)`` features and ``(n,)`` targets."""

    @abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``(n, p)`` features."""

    # -- parameter plumbing -------------------------------------------------

    @classmethod
    def _param_names(cls) -> list[str]:
        """Constructor argument names, introspected from ``__init__``."""
        sig = inspect.signature(cls.__init__)
        return [
            name
            for name, p in sig.parameters.items()
            if name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]

    def get_params(self) -> dict[str, Any]:
        """Return the hyper-parameters this estimator was constructed with."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "Regressor":
        """Update hyper-parameters in place; unknown names raise."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"unknown parameter {name!r} for {type(self).__name__}; "
                    f"valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    # -- convenience ---------------------------------------------------------

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2 on the given data."""
        from repro.ml.metrics import r2_score

        X, y = check_X_y(X, y)
        return r2_score(y, self.predict(X))

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: Regressor) -> Regressor:
    """Return a new unfitted estimator with the same hyper-parameters."""
    return type(estimator)(**estimator.get_params())
