"""Regression error metrics, including the paper's S-MAE.

The paper's validation phase (Sec. III-D) reports, per model:

- **MAE** — mean absolute prediction error (Eq. 5);
- **RAE** — relative absolute error, normalized by the error of the
  mean predictor (Eq. 6/7; note the paper's Eq. 7 takes the mean of
  ``|y_i|``, which we follow);
- **Max-AE** — maximum absolute prediction error;
- **S-MAE** — *soft* MAE: absolute errors below a user threshold ``T``
  count as zero. This encodes the proactive-rejuvenation tolerance: if the
  corrective action fires ``T`` seconds before the predicted failure, any
  error smaller than ``T`` is harmless.

All metrics validate shapes and reject empty inputs.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array, check_consistent_length


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = check_array(y_true, ndim=1, name="y_true")
    y_pred = check_array(y_pred, ndim=1, name="y_pred")
    check_consistent_length(y_true, y_pred)
    return y_true, y_pred


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """MAE (paper Eq. 5): ``mean(|f_i - y_i|)``."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.abs(y_pred - y_true).mean())


def relative_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """RAE (paper Eq. 6): total absolute error over that of the mean predictor.

    The simple predictor is ``Y = mean(|y_i|)`` per the paper's Eq. 7.
    Returns ``inf`` when the simple predictor is exact (degenerate target).
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    baseline = float(np.abs(np.abs(y_true).mean() - y_true).sum())
    total = float(np.abs(y_pred - y_true).sum())
    if baseline == 0.0:
        return float("inf") if total > 0.0 else 0.0
    return total / baseline


def max_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Maximum absolute prediction error over the validation set."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.abs(y_pred - y_true).max())


def soft_mean_absolute_error(
    y_true: np.ndarray, y_pred: np.ndarray, threshold: float
) -> float:
    """S-MAE: like MAE but errors strictly below *threshold* count as zero.

    *threshold* is in target units (seconds of RTTF in the paper). The
    paper's Table II uses a "10% threshold", i.e. ``threshold`` set to 10%
    of the observation horizon; that policy lives in
    :mod:`repro.core.evaluation` — this function takes the resolved value.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    y_true, y_pred = _check_pair(y_true, y_pred)
    err = np.abs(y_pred - y_true)
    err[err < threshold] = 0.0
    return float(err.mean())


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """RMSE — not in the paper's metric set but useful for diagnostics."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.sqrt(np.mean((y_pred - y_true) ** 2)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination. 1.0 is perfect; 0.0 matches the mean
    predictor; negative is worse than the mean predictor. Returns 0.0 for a
    constant target predicted exactly, ``-inf`` otherwise."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 0.0 if ss_res == 0.0 else float("-inf")
    return 1.0 - ss_res / ss_tot
