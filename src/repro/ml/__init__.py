"""From-scratch machine-learning substrate (numpy/scipy only).

Implements the six regression methods F2PM evaluates (paper Sec. III-D):

- :class:`~repro.ml.linear.LinearRegression` (Alpaydin 2014)
- :class:`~repro.ml.lasso.Lasso` (Tibshirani 1994) — used both for
  regularization-based feature selection and as a predictor
- :class:`~repro.ml.tree.m5p.M5PRegressor` (Wang & Witten 1997)
- :class:`~repro.ml.tree.reptree.REPTreeRegressor` (reduced-error pruning)
- :class:`~repro.ml.svr.SVR` (Cortes & Vapnik 1995, epsilon-insensitive)
- :class:`~repro.ml.lssvm.LSSVMRegressor` (Suykens & Vandewalle 1999)

plus preprocessing, metrics (including the paper's S-MAE) and model
selection utilities.
"""

from repro.ml.base import Regressor, clone
from repro.ml.preprocessing import StandardScaler, MinMaxScaler
from repro.ml.metrics import (
    mean_absolute_error,
    relative_absolute_error,
    max_absolute_error,
    soft_mean_absolute_error,
    root_mean_squared_error,
    r2_score,
)
from repro.ml.model_selection import (
    train_test_split,
    KFold,
    cross_validate,
    GridSearchCV,
)
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.lasso import Lasso, lasso_path
from repro.ml.kernels import (
    KernelExpansion,
    kernel_gram,
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
    squared_norms,
)
from repro.ml.svr import SVR
from repro.ml.lssvm import LSSVMRegressor
from repro.ml.tree import REPTreeRegressor, M5PRegressor
from repro.ml.ensemble import BaggingRegressor
from repro.ml.inspection import permutation_importance, PermutationImportance
from repro.ml.serving import CompiledPredictor, CompileReport, compile_predictor

__all__ = [
    "Regressor",
    "clone",
    "StandardScaler",
    "MinMaxScaler",
    "mean_absolute_error",
    "relative_absolute_error",
    "max_absolute_error",
    "soft_mean_absolute_error",
    "root_mean_squared_error",
    "r2_score",
    "train_test_split",
    "KFold",
    "cross_validate",
    "GridSearchCV",
    "LinearRegression",
    "RidgeRegression",
    "Lasso",
    "lasso_path",
    "KernelExpansion",
    "kernel_gram",
    "linear_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "squared_norms",
    "CompiledPredictor",
    "CompileReport",
    "compile_predictor",
    "SVR",
    "LSSVMRegressor",
    "REPTreeRegressor",
    "M5PRegressor",
    "BaggingRegressor",
    "permutation_importance",
    "PermutationImportance",
]
