"""Estimator composition: scaling wrapper.

The SVM-family learners (and WEKA's SMOreg, which normalizes internally)
are scale-sensitive, while F2PM feeds models raw system features spanning
nine orders of magnitude (KB counts vs CPU percentages). ``ScaledModel``
reproduces WEKA's internal normalization: it standardizes the features
(and optionally the target) before fitting the wrapped learner and maps
predictions back to target units.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor, clone
from repro.ml.preprocessing import StandardScaler
from repro.utils.validation import check_is_fitted, check_X_y


class ScaledModel(Regressor):
    """Standardize X (and optionally y) around an inner regressor.

    The *inner* estimator is treated as a prototype: ``fit`` trains a
    fresh clone (``inner_``), so several ``ScaledModel`` instances may
    share one prototype safely.
    """

    def __init__(
        self, inner: Regressor, scale_X: bool = True, scale_y: bool = True
    ) -> None:
        self.inner = inner
        self.scale_X = scale_X
        self.scale_y = scale_y
        self.inner_: Regressor | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ScaledModel":
        X, y = check_X_y(X, y)
        self._x_scaler = StandardScaler() if self.scale_X else None
        Xs = self._x_scaler.fit_transform(X) if self._x_scaler else X
        if self.scale_y:
            self._y_mean = float(y.mean())
            self._y_scale = float(y.std()) or 1.0
            ys = (y - self._y_mean) / self._y_scale
        else:
            self._y_mean, self._y_scale = 0.0, 1.0
            ys = y
        self.inner_ = clone(self.inner)
        self.inner_.fit(Xs, ys)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "inner_")
        Xs = self._x_scaler.transform(X) if self._x_scaler else np.asarray(X, dtype=np.float64)
        return self.inner_.predict(Xs) * self._y_scale + self._y_mean

    def __repr__(self) -> str:
        return f"ScaledModel({self.inner!r}, scale_X={self.scale_X}, scale_y={self.scale_y})"
