"""Ordinary least squares and ridge regression.

Linear Regression is one of the paper's six methods (Sec. III-D, Eq. 3)
and also powers two other pieces of the reproduction:

- the inter-generation-time -> response-time correlation model of Fig. 3
  ("using the fast Linear Regression"), and
- the linear models at the nodes of the M5P model tree, which use the
  ridge variant for numerical robustness on tiny leaf samples.

The solver is :func:`numpy.linalg.lstsq` (SVD-backed), which handles
rank-deficient design matrices — common once slope features are added,
since e.g. ``swap_used_slope`` and ``swap_free_slope`` are exactly
collinear.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor
from repro.utils.validation import check_array, check_is_fitted, check_X_y


class LinearRegression(Regressor):
    """Ordinary least squares: ``y = X beta + intercept``.

    Parameters
    ----------
    fit_intercept : bool
        If True (default) the model learns an unpenalized intercept by
        centring X and y before the solve.
    """

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X, y = check_X_y(X, y)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            Xc, yc = X, y
        coef, *_ = np.linalg.lstsq(Xc, yc, rcond=None)
        self.coef_ = coef
        self.intercept_ = float(y_mean - x_mean @ coef)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = check_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted on "
                f"{self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_


class RidgeRegression(Regressor):
    """L2-regularized least squares.

    Solves ``min ||y - X beta||^2 + alpha ||beta||^2`` via the normal
    equations with a Cholesky solve; the intercept is unpenalized. Used by
    M5P leaf models, where leaves may contain fewer samples than features.
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X, y = check_X_y(X, y)
        n, p = X.shape
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            Xc = X - x_mean
            yc = y - y_mean
        else:
            x_mean = np.zeros(p)
            y_mean = 0.0
            Xc, yc = X, y
        A = Xc.T @ Xc
        A[np.diag_indices_from(A)] += self.alpha
        try:
            coef = np.linalg.solve(A, Xc.T @ yc)
        except np.linalg.LinAlgError:
            # alpha == 0 with a singular design: fall back to the pseudoinverse.
            coef, *_ = np.linalg.lstsq(Xc, yc, rcond=None)
        self.coef_ = coef
        self.intercept_ = float(y_mean - x_mean @ coef)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = check_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted on "
                f"{self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_
