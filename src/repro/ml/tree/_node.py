"""Shared tree-node structure and vectorized index routing.

Both tree learners use linked :class:`Node` objects (the trees here are
small — tens to hundreds of nodes — so a flat-array encoding buys nothing,
while the pruning passes are much clearer on linked nodes). Prediction is
still vectorized: instead of walking the tree per sample, whole index
arrays are partitioned at each node (``route_indices``), so the per-node
work is numpy masking, not Python-level iteration per row.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np


class Node:
    """A regression-tree node.

    Internal nodes carry ``(feature, threshold, left, right)``; every node
    carries ``value`` (mean target of its training block) and ``n_samples``.
    Model trees additionally attach a ``model`` attribute.
    """

    __slots__ = (
        "feature",
        "threshold",
        "left",
        "right",
        "value",
        "n_samples",
        "model",
        "gain",
    )

    def __init__(self, value: float, n_samples: int) -> None:
        self.feature: int = -1
        self.threshold: float = 0.0
        self.left: Optional["Node"] = None
        self.right: Optional["Node"] = None
        self.value = value
        self.n_samples = n_samples
        self.model = None
        self.gain: float = 0.0  # criterion gain of this node's split

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def make_leaf(self) -> None:
        """Collapse this node to a leaf (used by pruning)."""
        self.feature = -1
        self.threshold = 0.0
        self.left = None
        self.right = None
        self.gain = 0.0

    def route_indices(self, X: np.ndarray, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Partition *idx* into (left, right) per this node's split."""
        mask = X[idx, self.feature] <= self.threshold
        return idx[mask], idx[~mask]

    # -- introspection -------------------------------------------------------

    def iter_nodes(self) -> Iterator["Node"]:
        """Pre-order traversal of the subtree rooted here."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.append(node.right)
                stack.append(node.left)

    def n_leaves(self) -> int:
        return sum(1 for n in self.iter_nodes() if n.is_leaf)

    def n_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def depth(self) -> int:
        """Maximum root-to-leaf edge count of the subtree rooted here."""
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())


def feature_importances(root: Node, n_features: int) -> np.ndarray:
    """Gain-based feature importances of a fitted tree.

    Each internal node credits its split's criterion gain to the split
    feature; the result is normalized to sum to 1 (all-zeros for a
    stump). This is the standard CART importance, applicable to both
    tree learners here.
    """
    importances = np.zeros(n_features)
    for node in root.iter_nodes():
        if not node.is_leaf:
            importances[node.feature] += node.gain
    total = importances.sum()
    if total > 0.0:
        importances /= total
    return importances


def predict_means(root: Node, X: np.ndarray) -> np.ndarray:
    """Vectorized mean-value prediction (REP-Tree style leaves)."""
    out = np.empty(X.shape[0])
    _fill_means(root, X, np.arange(X.shape[0]), out)
    return out


def _fill_means(node: Node, X: np.ndarray, idx: np.ndarray, out: np.ndarray) -> None:
    if idx.size == 0:
        return
    if node.is_leaf:
        out[idx] = node.value
        return
    left_idx, right_idx = node.route_indices(X, idx)
    _fill_means(node.left, X, left_idx, out)
    _fill_means(node.right, X, right_idx, out)
