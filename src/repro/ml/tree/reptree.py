"""REP-Tree: fast regression tree with reduced-error pruning.

The paper's best-performing method (Table II). Per its reference and the
WEKA implementation it mirrors, the learner:

1. splits the training data into a *grow* set and a *prune* set
   (WEKA uses numFolds=3: one third held out for pruning);
2. greedily grows a variance-reduction tree on the grow set (feature
   values sorted once per node — the "only sorts values for numeric
   attributes once" property comes from the vectorized splitter);
3. prunes bottom-up with **reduced-error pruning**: an internal node is
   collapsed to a leaf whenever the prune-set squared error of the leaf
   would not exceed the prune-set squared error of its subtree;
4. **backfits** the prune set: after pruning, leaf values are re-estimated
   on grow+prune data combined, so no sample is wasted.

Setting ``prune=False`` yields a plain variance-reduction tree.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor
from repro.ml.tree._node import Node, predict_means
from repro.ml.tree._splitter import find_best_split
from repro.utils.rng import as_rng
from repro.utils.validation import check_array, check_is_fitted, check_X_y


class REPTreeRegressor(Regressor):
    """Regression tree with reduced-error pruning and backfitting.

    Parameters
    ----------
    max_depth : int
        Depth cap; -1 means unlimited (WEKA default).
    min_samples_leaf : int
        Minimum samples on each side of a split.
    min_variance_prop : float
        A node is not split if its target variance falls below this
        proportion of the root variance (WEKA's minVarianceProp, 1e-3).
    prune : bool
        Perform reduced-error pruning with a held-out fold (default True).
    n_folds : int
        1/n_folds of the data is held out for pruning (WEKA numFolds=3).
    seed : int or None
        Shuffling seed for the grow/prune partition.

    Attributes
    ----------
    root_ : fitted tree root.
    n_leaves_, depth_ : structure statistics after pruning.
    """

    def __init__(
        self,
        max_depth: int = -1,
        min_samples_leaf: int = 2,
        min_variance_prop: float = 1e-3,
        prune: bool = True,
        n_folds: int = 3,
        seed: int | None = 0,
    ) -> None:
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if n_folds < 2:
            raise ValueError(f"n_folds must be >= 2, got {n_folds}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_variance_prop = min_variance_prop
        self.prune = prune
        self.n_folds = n_folds
        self.seed = seed
        self.root_: Node | None = None

    # -- growing -------------------------------------------------------------

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int, min_var: float) -> Node:
        node = Node(value=float(y.mean()), n_samples=y.shape[0])
        if self.max_depth >= 0 and depth >= self.max_depth:
            return node
        if y.shape[0] < 2 * self.min_samples_leaf:
            return node
        if float(y.var()) <= min_var:
            return node
        split = find_best_split(
            X, y, criterion="sse", min_samples_leaf=self.min_samples_leaf
        )
        if split is None:
            return node
        node.feature = split.feature
        node.threshold = split.threshold
        node.gain = split.gain
        mask = X[:, split.feature] <= split.threshold
        node.left = self._grow(X[mask], y[mask], depth + 1, min_var)
        node.right = self._grow(X[~mask], y[~mask], depth + 1, min_var)
        return node

    # -- reduced-error pruning -----------------------------------------------

    def _prune_rec(
        self, node: Node, X: np.ndarray, y: np.ndarray, idx: np.ndarray
    ) -> float:
        """Prune the subtree bottom-up; returns its prune-set SSE.

        A node with no prune-set coverage keeps its subtree (no evidence to
        prune on), contributing zero error.
        """
        if node.is_leaf:
            if idx.size == 0:
                return 0.0
            return float(((y[idx] - node.value) ** 2).sum())
        left_idx, right_idx = node.route_indices(X, idx)
        subtree_sse = self._prune_rec(node.left, X, y, left_idx) + self._prune_rec(
            node.right, X, y, right_idx
        )
        if idx.size == 0:
            return 0.0
        leaf_sse = float(((y[idx] - node.value) ** 2).sum())
        if leaf_sse <= subtree_sse:
            node.make_leaf()
            return leaf_sse
        return subtree_sse

    # -- backfitting -----------------------------------------------------------

    def _backfit(self, node: Node, X: np.ndarray, y: np.ndarray, idx: np.ndarray) -> None:
        """Re-estimate node values on the combined data routed to them."""
        if idx.size > 0:
            node.value = float(y[idx].mean())
            node.n_samples = int(idx.size)
        if node.is_leaf:
            return
        left_idx, right_idx = node.route_indices(X, idx)
        self._backfit(node.left, X, y, left_idx)
        self._backfit(node.right, X, y, right_idx)

    # -- public API ------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "REPTreeRegressor":
        X, y = check_X_y(X, y)
        n = X.shape[0]
        min_var = self.min_variance_prop * float(y.var())

        do_prune = self.prune and n >= 2 * self.n_folds
        if do_prune:
            perm = as_rng(self.seed).permutation(n)
            n_prune = n // self.n_folds
            prune_idx = perm[:n_prune]
            grow_idx = perm[n_prune:]
            X_grow, y_grow = X[grow_idx], y[grow_idx]
        else:
            X_grow, y_grow = X, y

        self.root_ = self._grow(X_grow, y_grow, depth=0, min_var=min_var)

        if do_prune:
            X_prune, y_prune = X[prune_idx], y[prune_idx]
            self._prune_rec(self.root_, X_prune, y_prune, np.arange(X_prune.shape[0]))
            self._backfit(self.root_, X, y, np.arange(n))

        self.n_leaves_ = self.root_.n_leaves()
        self.depth_ = self.root_.depth()
        self._n_features = X.shape[1]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "root_")
        X = check_array(X)
        if X.shape[1] != self._n_features:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted on {self._n_features}"
            )
        return predict_means(self.root_, X)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Gain-based importances, normalized to sum to 1."""
        check_is_fitted(self, "root_")
        from repro.ml.tree._node import feature_importances

        return feature_importances(self.root_, self._n_features)
