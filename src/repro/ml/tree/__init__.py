"""Regression-tree learners: REP-Tree and the M5P model tree."""

from repro.ml.tree.reptree import REPTreeRegressor
from repro.ml.tree.m5p import M5PRegressor
from repro.ml.tree.export import export_text

__all__ = ["REPTreeRegressor", "M5PRegressor", "export_text"]
