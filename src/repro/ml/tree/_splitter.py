"""Vectorized best-split search for regression trees.

Both tree learners reduce to the same inner problem: given a node's
``(n, p)`` feature block and ``(n,)`` targets, find the axis-aligned split
``x[:, f] <= t`` that maximizes an impurity-reduction criterion subject to
a minimum-samples-per-side constraint.

Two criteria are supported:

- ``"sse"`` — reduction in the sum of squared errors (variance reduction;
  REP-Tree's splitting rule);
- ``"sdr"`` — standard-deviation reduction,
  ``sd(T) - sum_i (n_i/n) sd(T_i)`` (M5's splitting rule, Wang & Witten).

The scan over split positions is fully vectorized per feature: targets are
sorted once by feature value, prefix sums of ``y`` and ``y^2`` yield both
children's SSE at every cut in O(n), and splits between equal feature
values are masked out. The Python-level loop is only over features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Split:
    """A chosen split: feature index, threshold, criterion gain."""

    feature: int
    threshold: float
    gain: float


def _children_sse(
    ys_sorted: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SSE of left/right children at every cut position.

    Cut ``i`` (1-based, i = 1..n-1) places the first ``i`` sorted samples
    on the left. Returns ``(left_sse, right_sse, left_counts)`` arrays of
    length ``n - 1``.
    """
    n = ys_sorted.shape[0]
    csum = np.cumsum(ys_sorted)
    csq = np.cumsum(ys_sorted * ys_sorted)
    counts = np.arange(1, n, dtype=np.float64)

    left_sum = csum[:-1]
    left_sq = csq[:-1]
    left_sse = left_sq - left_sum * left_sum / counts

    right_sum = csum[-1] - left_sum
    right_sq = csq[-1] - left_sq
    right_counts = n - counts
    right_sse = right_sq - right_sum * right_sum / right_counts

    # Clamp tiny negatives from floating-point cancellation.
    np.maximum(left_sse, 0.0, out=left_sse)
    np.maximum(right_sse, 0.0, out=right_sse)
    return left_sse, right_sse, counts


def find_best_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    criterion: str = "sse",
    min_samples_leaf: int = 1,
    features: np.ndarray | None = None,
) -> Split | None:
    """Return the best split of ``(X, y)`` or None if no valid split exists.

    Parameters
    ----------
    criterion : {"sse", "sdr"}
    min_samples_leaf : int
        Both children must receive at least this many samples.
    features : optional array of feature indices to consider (default all).
    """
    if criterion not in ("sse", "sdr"):
        raise ValueError(f"unknown criterion {criterion!r}")
    n, p = X.shape
    if n < 2 * min_samples_leaf:
        return None
    total_sum = float(y.sum())
    total_sq = float((y * y).sum())
    total_sse = max(total_sq - total_sum * total_sum / n, 0.0)
    if total_sse == 0.0:
        return None  # node is pure
    total_sd = np.sqrt(total_sse / n)

    feature_indices = np.arange(p) if features is None else np.asarray(features)
    best: Split | None = None
    for f in feature_indices:
        col = X[:, f]
        order = np.argsort(col, kind="stable")
        xs = col[order]
        if xs[0] == xs[-1]:
            continue  # constant feature at this node
        ys = y[order]
        left_sse, right_sse, counts = _children_sse(ys)

        if criterion == "sse":
            gains = total_sse - left_sse - right_sse
        else:  # sdr
            left_sd = np.sqrt(left_sse / counts)
            right_sd = np.sqrt(right_sse / (n - counts))
            gains = total_sd - (counts * left_sd + (n - counts) * right_sd) / n

        # Valid cuts: distinct adjacent feature values, leaf-size respected.
        valid = xs[1:] != xs[:-1]
        if min_samples_leaf > 1:
            valid = valid.copy()
            valid[: min_samples_leaf - 1] = False
            if min_samples_leaf - 1 > 0:
                valid[-(min_samples_leaf - 1) :] = False
        if not valid.any():
            continue
        gains = np.where(valid, gains, -np.inf)
        k = int(np.argmax(gains))
        gain = float(gains[k])
        if gain <= 0.0:
            continue
        if best is None or gain > best.gain:
            threshold = float(0.5 * (xs[k] + xs[k + 1]))
            # Guard against midpoint rounding onto the right value, which
            # would route samples inconsistently with the scan.
            if not xs[k] <= threshold < xs[k + 1]:
                threshold = float(xs[k])
            best = Split(feature=int(f), threshold=threshold, gain=gain)
    return best
