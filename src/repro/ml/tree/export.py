"""Human-readable rendering of fitted trees.

WEKA prints its REP-Trees and M5P model trees as indented text; model
inspection is half the reason practitioners reach for trees. These
exporters do the same for this package's learners::

    print(export_text(model, feature_names))

REP-Tree leaves show the predicted mean and sample count; M5P leaves show
the leaf's linear model (and internal nodes can optionally show theirs,
since smoothing consults them).
"""

from __future__ import annotations

from typing import Sequence

from repro.ml.tree._node import Node


def _name(feature: int, feature_names: "Sequence[str] | None") -> str:
    if feature_names is None:
        return f"x[{feature}]"
    return feature_names[feature]


def _format_model(model, feature_names: "Sequence[str] | None") -> str:
    """Render a _NodeModel as 'a*f1 + b*f2 + c'."""
    terms = [
        f"{coef:+.4g}*{_name(int(f), feature_names)}"
        for f, coef in zip(model.features, model.coef)
    ]
    terms.append(f"{model.intercept:+.4g}")
    return " ".join(terms)


def export_text(
    estimator,
    feature_names: "Sequence[str] | None" = None,
    *,
    show_internal_models: bool = False,
) -> str:
    """Render a fitted tree estimator (REP-Tree or M5P) as text.

    Parameters
    ----------
    estimator : fitted REPTreeRegressor or M5PRegressor (anything with a
        ``root_`` Node attribute).
    feature_names : optional names for the split/model features.
    show_internal_models : for model trees, also print the linear model
        attached to internal nodes (used by smoothing).
    """
    root: "Node | None" = getattr(estimator, "root_", None)
    if root is None:
        raise RuntimeError(
            f"{type(estimator).__name__} is not fitted; call fit() first"
        )
    lines: list[str] = []
    _render(root, feature_names, show_internal_models, prefix="", lines=lines)
    return "\n".join(lines)


def _leaf_label(node: Node, feature_names: "Sequence[str] | None") -> str:
    if node.model is not None:
        return f"LM: {_format_model(node.model, feature_names)} (n={node.n_samples})"
    return f"value = {node.value:.4g} (n={node.n_samples})"


def _render(
    node: Node,
    feature_names: "Sequence[str] | None",
    show_internal_models: bool,
    prefix: str,
    lines: list[str],
) -> None:
    if node.is_leaf:
        lines.append(f"{prefix}{_leaf_label(node, feature_names)}")
        return
    name = _name(node.feature, feature_names)
    suffix = ""
    if show_internal_models and node.model is not None:
        suffix = f"   [LM: {_format_model(node.model, feature_names)}]"
    lines.append(f"{prefix}{name} <= {node.threshold:.6g}{suffix}")
    _render(node.left, feature_names, show_internal_models, prefix + "|   ", lines)
    lines.append(f"{prefix}{name} > {node.threshold:.6g}")
    _render(node.right, feature_names, show_internal_models, prefix + "|   ", lines)
