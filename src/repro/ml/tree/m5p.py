"""M5P model tree (Wang & Witten 1997, "M5 prime").

The paper's second-best method. A model tree is a regression tree whose
leaves hold *linear models* rather than constants:

1. **Growing** — standard-deviation-reduction (SDR) splitting; growth
   stops when a node's target standard deviation falls below 5% of the
   root's, or too few samples remain (paper Sec. III-D: "a splitting
   criterion is used that minimizes the intra-subset variation ... stops if
   the class values of all instances that reach a node vary very slightly,
   or only a few instances remain").
2. **Linear models** — each node gets a linear model restricted to the
   attributes tested in the subtree rooted at it, then greedily simplified
   by dropping terms while the complexity-penalized error estimate does
   not increase. The penalty is Quinlan's ``(n + v) / (n - v)`` factor on
   the training MAE, with ``v`` the number of model parameters.
3. **Pruning** — bottom-up: an inner node is turned into a leaf with its
   regression plane whenever the node model's estimated error does not
   exceed the (sample-weighted) estimated error of its subtree.
4. **Smoothing** — at prediction time, the leaf prediction ``p`` is
   blended with each ancestor's model value ``q`` along the path back to
   the root: ``p' = (n p + k q) / (n + k)``, with ``n`` the child's
   training count and ``k = 15`` (the W&W constant), avoiding sharp
   discontinuities between adjacent subtrees.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor
from repro.ml.linear import RidgeRegression
from repro.ml.tree._node import Node
from repro.ml.tree._splitter import find_best_split
from repro.utils.validation import check_array, check_is_fitted, check_X_y

_BIG = np.inf


class _NodeModel:
    """A linear model over a subset of the feature columns."""

    __slots__ = ("features", "coef", "intercept")

    def __init__(self, features: np.ndarray, coef: np.ndarray, intercept: float) -> None:
        self.features = features
        self.coef = coef
        self.intercept = intercept

    @property
    def n_params(self) -> int:
        """Parameter count v used in the (n+v)/(n-v) penalty."""
        return self.coef.shape[0] + 1

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.features.size == 0:
            return np.full(X.shape[0], self.intercept)
        return X[:, self.features] @ self.coef + self.intercept

    @classmethod
    def fit(cls, X: np.ndarray, y: np.ndarray, features: np.ndarray) -> "_NodeModel":
        if features.size == 0 or X.shape[0] < 2:
            return cls(np.empty(0, dtype=np.intp), np.empty(0), float(y.mean()))
        # Fit on standardized columns so the ridge penalty is meaningful
        # across raw feature scales, then fold the scaling back. Leaves
        # hold few samples and near-collinear features; without real
        # shrinkage the local coefficients explode and the model
        # extrapolates wildly outside the leaf's region.
        block = X[:, features]
        mean = block.mean(axis=0)
        scale = block.std(axis=0)
        scale[scale == 0.0] = 1.0
        reg = RidgeRegression(alpha=1e-2).fit((block - mean) / scale, y)
        coef = reg.coef_ / scale
        intercept = float(reg.intercept_ - mean @ coef)
        return cls(features, coef, intercept)


def _penalty(n: int, v: int) -> float:
    """Quinlan's pessimistic multiplier (n+v)/(n-v); inf when n <= v."""
    if n <= v:
        return _BIG
    return (n + v) / (n - v)


def _estimated_error(model: _NodeModel, X: np.ndarray, y: np.ndarray) -> float:
    """Complexity-penalized training MAE of *model* on (X, y)."""
    if y.shape[0] == 0:
        return 0.0
    mae = float(np.abs(model.predict(X) - y).mean())
    return mae * _penalty(y.shape[0], model.n_params)


def _fit_simplified(
    X: np.ndarray, y: np.ndarray, candidates: np.ndarray
) -> tuple[_NodeModel, float]:
    """Fit a node model, greedily dropping the weakest term while the
    estimated error does not increase. Returns (model, estimated_error)."""
    features = np.asarray(sorted(candidates), dtype=np.intp)
    model = _NodeModel.fit(X, y, features)
    err = _estimated_error(model, X, y)
    while model.features.size > 0:
        # Weakest term = smallest |coef| * std(feature): least contribution
        # to the prediction in target units.
        scales = X[:, model.features].std(axis=0)
        weight = np.abs(model.coef) * np.where(scales > 0, scales, 1.0)
        drop = int(np.argmin(weight))
        reduced = np.delete(model.features, drop)
        trial = _NodeModel.fit(X, y, reduced)
        trial_err = _estimated_error(trial, X, y)
        if trial_err <= err:
            model, err = trial, trial_err
        else:
            break
    return model, err


class M5PRegressor(Regressor):
    """M5P model tree for regression.

    Parameters
    ----------
    min_samples_split : int
        Minimum node size eligible for splitting (M5 default 4).
    sd_threshold : float
        Growth stops when node sd < ``sd_threshold`` * root sd (M5: 0.05).
    prune : bool
        Apply the complexity-penalized pruning pass (default True).
    smoothing : bool
        Blend leaf predictions with ancestor models (default True).
    smoothing_k : float
        The k constant of the smoothing rule (W&W use 15).

    Attributes
    ----------
    root_ : fitted tree root (nodes carry ``model`` attributes).
    n_leaves_, depth_ : structure statistics after pruning.
    """

    def __init__(
        self,
        min_samples_split: int = 4,
        sd_threshold: float = 0.05,
        prune: bool = True,
        smoothing: bool = True,
        smoothing_k: float = 15.0,
    ) -> None:
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        self.min_samples_split = min_samples_split
        self.sd_threshold = sd_threshold
        self.prune = prune
        self.smoothing = smoothing
        self.smoothing_k = smoothing_k
        self.root_: Node | None = None

    # -- growing -------------------------------------------------------------

    def _grow(self, X: np.ndarray, y: np.ndarray, sd_stop: float) -> Node:
        node = Node(value=float(y.mean()), n_samples=y.shape[0])
        if y.shape[0] < self.min_samples_split or float(y.std()) < sd_stop:
            return node
        split = find_best_split(X, y, criterion="sdr", min_samples_leaf=2)
        if split is None:
            return node
        node.feature = split.feature
        node.threshold = split.threshold
        node.gain = split.gain
        mask = X[:, split.feature] <= split.threshold
        node.left = self._grow(X[mask], y[mask], sd_stop)
        node.right = self._grow(X[~mask], y[~mask], sd_stop)
        return node

    # -- model fitting + pruning (single bottom-up pass) ----------------------

    def _build(
        self, node: Node, X: np.ndarray, y: np.ndarray, idx: np.ndarray
    ) -> tuple[float, set[int]]:
        """Attach (simplified) models bottom-up and prune.

        Returns the estimated error of the (possibly pruned) subtree and
        the attribute set referenced beneath *node* (which constrains the
        ancestors' candidate models, per M5).
        """
        X_node, y_node = X[idx], y[idx]
        if node.is_leaf:
            model, err = _fit_simplified(X_node, y_node, np.empty(0, dtype=np.intp))
            node.model = model
            return err, set(model.features.tolist())

        left_idx, right_idx = node.route_indices(X, idx)
        left_err, used_left = self._build(node.left, X, y, left_idx)
        right_err, used_right = self._build(node.right, X, y, right_idx)
        used = used_left | used_right | {node.feature}

        model, node_err = _fit_simplified(X_node, y_node, np.asarray(sorted(used)))
        node.model = model

        n = idx.size
        subtree_err = (left_idx.size * left_err + right_idx.size * right_err) / n
        if self.prune and node_err <= subtree_err:
            node.make_leaf()
            return node_err, set(model.features.tolist())
        return subtree_err, used

    # -- prediction ------------------------------------------------------------

    def _predict_rec(self, node: Node, X: np.ndarray, idx: np.ndarray, out: np.ndarray) -> None:
        if idx.size == 0:
            return
        if node.is_leaf:
            out[idx] = node.model.predict(X[idx])
            return
        left_idx, right_idx = node.route_indices(X, idx)
        self._predict_rec(node.left, X, left_idx, out)
        self._predict_rec(node.right, X, right_idx, out)
        if self.smoothing:
            k = self.smoothing_k
            for child, child_idx in ((node.left, left_idx), (node.right, right_idx)):
                if child_idx.size == 0:
                    continue
                q = node.model.predict(X[child_idx])
                n = child.n_samples
                out[child_idx] = (n * out[child_idx] + k * q) / (n + k)

    # -- public API ------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "M5PRegressor":
        X, y = check_X_y(X, y)
        sd_stop = self.sd_threshold * float(y.std())
        self.root_ = self._grow(X, y, sd_stop)
        self._build(self.root_, X, y, np.arange(X.shape[0]))
        self.n_leaves_ = self.root_.n_leaves()
        self.depth_ = self.root_.depth()
        self._n_features = X.shape[1]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "root_")
        X = check_array(X)
        if X.shape[1] != self._n_features:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted on {self._n_features}"
            )
        out = np.empty(X.shape[0])
        self._predict_rec(self.root_, X, np.arange(X.shape[0]), out)
        return out

    @property
    def feature_importances_(self) -> np.ndarray:
        """Gain-based (SDR) importances of the split structure,
        normalized to sum to 1. Leaf linear models are not included —
        use permutation importance for the full picture."""
        check_is_fitted(self, "root_")
        from repro.ml.tree._node import feature_importances

        return feature_importances(self.root_, self._n_features)
