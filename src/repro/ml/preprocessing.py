"""Feature scaling.

The SVR, LS-SVM and Lasso learners are scale-sensitive; F2PM standardizes
features before handing them to those methods (the tree learners are
scale-invariant and skip it). Both scalers follow the fit/transform
convention and support exact inverse transforms.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array, check_is_fitted


class StandardScaler:
    """Standardize features to zero mean and unit variance.

    Constant features (zero variance) are left centred but un-scaled so the
    transform never divides by zero — relevant for F2PM because some
    monitored features (e.g. ``cpu_steal`` on an idle hypervisor) can be
    constant over a whole campaign.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "mean_")
        X = check_array(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted on "
                f"{self.mean_.shape[0]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "mean_")
        X = check_array(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features to a target range (default ``[0, 1]``).

    Constant features map to the lower bound of the range.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        lo, hi = feature_range
        if not lo < hi:
            raise ValueError(f"feature_range must be increasing, got {feature_range}")
        self.feature_range = feature_range
        self.min_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        X = check_array(X)
        lo, hi = self.feature_range
        data_min = X.min(axis=0)
        data_range = X.max(axis=0) - data_min
        data_range[data_range == 0.0] = 1.0
        self.scale_ = (hi - lo) / data_range
        self.min_ = lo - data_min * self.scale_
        self.data_min_ = data_min
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "min_")
        X = check_array(X)
        if X.shape[1] != self.min_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted on "
                f"{self.min_.shape[0]}"
            )
        return X * self.scale_ + self.min_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "min_")
        X = check_array(X)
        return (X - self.min_) / self.scale_
