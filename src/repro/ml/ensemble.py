"""Bagging ensemble — a user-added method for the F2PM model zoo.

The paper notes the method set "can be customized by the user by adding
other methods or removing some of them" (Sec. III-D). This module is the
worked example of that extension point: a bootstrap-aggregating ensemble
over any base regressor, registered into the zoo as ``"bagging"``.

Bagging a REP-Tree is the natural upgrade path for the paper's
best-performing method: averaging trees grown on bootstrap resamples
reduces the variance of the piecewise-constant predictions.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import Regressor, clone
from repro.utils.rng import as_rng
from repro.utils.validation import check_array, check_is_fitted, check_X_y


class BaggingRegressor(Regressor):
    """Bootstrap aggregation over a base regressor.

    Parameters
    ----------
    base : Regressor
        Prototype estimator; a fresh clone is fitted per bootstrap sample.
    n_estimators : int
        Ensemble size.
    sample_fraction : float
        Bootstrap sample size as a fraction of the training set (drawn
        with replacement).
    seed : int or None
        Resampling seed.
    """

    def __init__(
        self,
        base: Regressor | None = None,
        n_estimators: int = 10,
        sample_fraction: float = 1.0,
        seed: "int | None" = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {sample_fraction}"
            )
        if base is None:
            from repro.ml.tree import REPTreeRegressor

            base = REPTreeRegressor(prune=False, seed=0)
        self.base = base
        self.n_estimators = n_estimators
        self.sample_fraction = sample_fraction
        self.seed = seed
        self.estimators_: "list[Regressor] | None" = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaggingRegressor":
        X, y = check_X_y(X, y)
        rng = as_rng(self.seed)
        n = X.shape[0]
        size = max(1, int(round(self.sample_fraction * n)))
        self.estimators_ = []
        for _ in range(self.n_estimators):
            idx = rng.integers(0, n, size=size)
            member = clone(self.base)
            member.fit(X[idx], y[idx])
            self.estimators_.append(member)
        self._n_features = X.shape[1]
        return self

    def _member_predictions(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "estimators_")
        X = check_array(X)
        if X.shape[1] != self._n_features:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted on {self._n_features}"
            )
        return np.stack([member.predict(X) for member in self.estimators_])

    @staticmethod
    def _member_mean(members: np.ndarray) -> np.ndarray:
        # Sequential accumulation over the member axis. ``mean(axis=0)``
        # picks its summation strategy from the array layout, so a
        # (k, 1) column and a (k, n) batch can disagree in the last bit
        # for the same row — which would break the fleet controller's
        # batched-vs-scalar bit-identity contract. A fixed member-by-
        # member order is layout-independent.
        acc = members[0].copy()
        for row in members[1:]:
            acc += row
        return acc / len(members)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._member_mean(self._member_predictions(X))

    def predict_interval(
        self, X: np.ndarray, quantile: float = 0.1
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bootstrap prediction interval: (lower, mean, upper).

        ``lower``/``upper`` are the *quantile* and *1 - quantile*
        empirical quantiles of the member predictions — the ensemble
        spread as an epistemic-uncertainty proxy. A proactive-
        rejuvenation controller can act on the lower RTTF bound instead
        of the mean to buy extra safety margin.
        """
        if not 0.0 < quantile < 0.5:
            raise ValueError(f"quantile must be in (0, 0.5), got {quantile}")
        members = self._member_predictions(X)
        # One quantile pass for both bounds: np.quantile sorts (a copy of)
        # the member axis once per call, so fusing the two calls halves
        # the reduction cost; results are bit-identical to separate calls.
        lower, upper = np.quantile(members, [quantile, 1.0 - quantile], axis=0)
        return lower, self._member_mean(members), upper
