"""Kernel functions and Gram-matrix computation for the SVM-family learners.

Gram matrices are computed with BLAS-backed matrix products (no Python
loops), per the vectorization idioms of the HPC guides: the RBF kernel
expands ``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b`` so the dominant cost
is a single matmul.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

KernelFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _as_2d(X: np.ndarray, dtype: "np.dtype | type" = np.float64) -> np.ndarray:
    # ``asarray`` is a no-copy pass-through when the input is already an
    # ndarray of the requested dtype — the hot predict paths hand the
    # same float64 windows in every tick and must not pay a copy per
    # call (pinned by tests/utils/test_utils_validation.py).
    X = np.asarray(X, dtype=dtype)
    if X.ndim == 1:
        X = X[None, :]
    if X.ndim != 2:
        raise ValueError(f"kernel inputs must be 2-D, got shape {X.shape}")
    return X


def linear_kernel(
    X: np.ndarray, Y: np.ndarray, *, dtype: "np.dtype | type" = np.float64
) -> np.ndarray:
    """K(x, y) = x . y ; returns the (n_x, n_y) Gram matrix.

    ``dtype`` selects the computation precision; the default (float64)
    is the exact training-side path, float32 is the compiled serving
    path (:mod:`repro.ml.serving`).
    """
    X, Y = _as_2d(X, dtype), _as_2d(Y, dtype)
    return X @ Y.T


def polynomial_kernel(
    X: np.ndarray,
    Y: np.ndarray,
    *,
    degree: int = 3,
    gamma: float = 1.0,
    coef0: float = 1.0,
    dtype: "np.dtype | type" = np.float64,
) -> np.ndarray:
    """K(x, y) = (gamma * x.y + coef0)^degree."""
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    X, Y = _as_2d(X, dtype), _as_2d(Y, dtype)
    # Python-float scalars are weak under NEP 50, so the expression keeps
    # the arrays' dtype — float32 serving inputs stay float32 throughout.
    return (gamma * (X @ Y.T) + coef0) ** degree


def squared_norms(
    X: np.ndarray, *, dtype: "np.dtype | type" = np.float64
) -> np.ndarray:
    """Row-wise ``||x||^2`` — the precomputable half of the RBF expansion.

    Kernel predictors whose reference rows are fixed (the support
    vectors) compute this once at fit time and pass it to
    :func:`rbf_kernel` as ``sq_y`` on every predict call.
    """
    X = _as_2d(X, dtype)
    return np.einsum("ij,ij->i", X, X)


def rbf_kernel(
    X: np.ndarray,
    Y: np.ndarray,
    *,
    gamma: float = 1.0,
    sq_y: "np.ndarray | None" = None,
    dtype: "np.dtype | type" = np.float64,
) -> np.ndarray:
    """K(x, y) = exp(-gamma * ||x - y||^2).

    ``sq_y``, if given, must be ``squared_norms(Y)``; it skips the
    row-norm pass over ``Y`` (identical result — the same einsum either
    way). ``dtype`` selects the computation precision (see
    :func:`linear_kernel`).
    """
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    X, Y = _as_2d(X, dtype), _as_2d(Y, dtype)
    sq_x = np.einsum("ij,ij->i", X, X)
    if sq_y is None:
        sq_y = np.einsum("ij,ij->i", Y, Y)
    elif sq_y.shape != (Y.shape[0],):
        raise ValueError(
            f"sq_y must have shape ({Y.shape[0]},), got {sq_y.shape}"
        )
    d2 = sq_x[:, None] + sq_y[None, :] - 2.0 * (X @ Y.T)
    np.maximum(d2, 0.0, out=d2)  # clamp tiny negatives from cancellation
    return np.exp(-gamma * d2)


@dataclass(frozen=True)
class KernelExpansion:
    """A fitted kernel machine in canonical dual form.

    Every kernel regressor in this package predicts as
    ``f(x) = sum_i coef_i K(x, ref_i) + intercept``; this dataclass is
    that expansion, extracted via the learners' ``kernel_expansion()``
    hooks so the serving compiler (:mod:`repro.ml.serving`) can prune,
    factorize and re-precision it without knowing the learner class.
    """

    #: (n_ref, d) reference rows (support vectors / training rows).
    ref: np.ndarray
    #: (n_ref,) dual coefficients.
    coef: np.ndarray
    intercept: float
    kernel: str
    #: Resolved numeric kernel coefficient (never the "scale" sentinel).
    gamma: float
    degree: int = 3
    coef0: float = 1.0

    def __post_init__(self) -> None:
        if self.ref.ndim != 2:
            raise ValueError(f"ref must be 2-D, got shape {self.ref.shape}")
        if self.coef.shape != (self.ref.shape[0],):
            raise ValueError(
                f"coef must have shape ({self.ref.shape[0]},), got "
                f"{self.coef.shape}"
            )

    def gram(self, X: np.ndarray, *, dtype: "np.dtype | type" = np.float64):
        """``K(X, ref)`` under this expansion's kernel parameters."""
        return kernel_gram(
            X,
            self.ref,
            kernel=self.kernel,
            gamma=self.gamma,
            degree=self.degree,
            coef0=self.coef0,
            dtype=dtype,
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Exact (float64) evaluation of the expansion."""
        if self.ref.shape[0] == 0:
            return np.full(np.asarray(X).shape[0], self.intercept)
        return self.gram(X) @ self.coef + self.intercept


def kernel_gram(
    X: np.ndarray,
    Y: np.ndarray,
    *,
    kernel: str,
    gamma: float = 1.0,
    degree: int = 3,
    coef0: float = 1.0,
    sq_y: "np.ndarray | None" = None,
    dtype: "np.dtype | type" = np.float64,
) -> np.ndarray:
    """Dispatch ``K(X, Y)`` by kernel name at the requested precision."""
    if kernel == "linear":
        return linear_kernel(X, Y, dtype=dtype)
    if kernel == "poly":
        return polynomial_kernel(
            X, Y, degree=degree, gamma=gamma, coef0=coef0, dtype=dtype
        )
    if kernel == "rbf":
        return rbf_kernel(X, Y, gamma=gamma, sq_y=sq_y, dtype=dtype)
    raise ValueError(f"unknown kernel {kernel!r}; choose linear, poly or rbf")


def resolve_kernel(
    kernel: str, *, gamma: float = 1.0, degree: int = 3, coef0: float = 1.0
) -> KernelFn:
    """Return a two-argument Gram function for a kernel name.

    ``gamma`` may be the string ``"scale"`` sentinel resolved by the caller;
    here it must already be numeric.
    """
    if kernel == "linear":
        return linear_kernel
    if kernel == "poly":
        return lambda X, Y: polynomial_kernel(X, Y, degree=degree, gamma=gamma, coef0=coef0)
    if kernel == "rbf":
        return lambda X, Y: rbf_kernel(X, Y, gamma=gamma)
    raise ValueError(f"unknown kernel {kernel!r}; choose linear, poly or rbf")


def resolve_kernel_diag(
    kernel: str, *, gamma: float = 1.0, degree: int = 3, coef0: float = 1.0
) -> Callable[[np.ndarray], np.ndarray]:
    """Return a function computing ``diag(K(X, X))`` in O(n p).

    The SMO solver needs the kernel diagonal without materializing the
    Gram matrix.
    """
    if kernel == "linear":
        return lambda X: np.einsum("ij,ij->i", _as_2d(X), _as_2d(X))
    if kernel == "poly":
        return lambda X: (
            gamma * np.einsum("ij,ij->i", _as_2d(X), _as_2d(X)) + coef0
        ) ** degree
    if kernel == "rbf":
        return lambda X: np.ones(_as_2d(X).shape[0])
    raise ValueError(f"unknown kernel {kernel!r}; choose linear, poly or rbf")


def resolve_gamma(gamma: "float | str", X: np.ndarray) -> float:
    """Resolve the ``"scale"`` sentinel to ``1 / (p * var(X))`` (LIBSVM rule)."""
    if isinstance(gamma, str):
        if gamma != "scale":
            raise ValueError(f"gamma must be a float or 'scale', got {gamma!r}")
        var = float(X.var())
        if var == 0.0:
            var = 1.0
        return 1.0 / (X.shape[1] * var)
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    return float(gamma)
