"""Availability accounting for managed-system runs.

Besides summarizing simulated :class:`ManagedRunLog`s, this module
provides the classic renewal-theory availability formulas, so policy
parameters can be reasoned about analytically and the simulator
cross-checked:

- crash-only: ``A = E[TTF] / (E[TTF] + d_crash)``;
- periodic with interval tau: each cycle runs ``min(TTF, tau)`` and pays
  ``d_crash`` when the crash came first, ``d_rejuv`` otherwise::

      A(tau) = E[min(TTF, tau)] /
               (E[min(TTF, tau)] + P(TTF <= tau) d_crash
                                 + P(TTF > tau) d_rejuv)

Expectations are taken over an empirical TTF sample (e.g. the fail times
of a monitoring campaign).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rejuvenation.controller import ManagedRunLog


@dataclass(frozen=True)
class AvailabilityReport:
    """Summary of a managed run, one row of the policy-comparison table."""

    policy: str
    availability: float
    n_crashes: int
    n_rejuvenations: int
    total_uptime: float
    total_downtime: float
    mean_episode_uptime: float

    def row(self) -> list[object]:
        return [
            self.policy,
            self.availability,
            self.n_crashes,
            self.n_rejuvenations,
            self.total_downtime,
            self.mean_episode_uptime,
        ]

    HEADERS = (
        "policy",
        "availability",
        "crashes",
        "rejuvenations",
        "downtime (s)",
        "mean uptime/episode (s)",
    )


def crash_only_availability(ttf_samples: np.ndarray, crash_downtime: float) -> float:
    """Renewal availability of the no-rejuvenation baseline."""
    ttf = _check_ttf(ttf_samples)
    if crash_downtime < 0:
        raise ValueError(f"crash_downtime must be >= 0, got {crash_downtime}")
    mean_ttf = float(ttf.mean())
    return mean_ttf / (mean_ttf + crash_downtime)


def periodic_availability(
    ttf_samples: np.ndarray,
    interval: float,
    rejuvenation_downtime: float,
    crash_downtime: float,
) -> float:
    """Renewal availability of periodic rejuvenation at *interval*."""
    ttf = _check_ttf(ttf_samples)
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    up = np.minimum(ttf, interval)
    p_crash = float((ttf <= interval).mean())
    mean_up = float(up.mean())
    downtime = p_crash * crash_downtime + (1.0 - p_crash) * rejuvenation_downtime
    return mean_up / (mean_up + downtime)


def optimal_periodic_interval(
    ttf_samples: np.ndarray,
    rejuvenation_downtime: float,
    crash_downtime: float,
    *,
    n_grid: int = 200,
) -> tuple[float, float]:
    """Best periodic interval on a grid over the TTF support.

    Returns ``(interval, availability)``. The optimum exists because
    short intervals waste uptime on restarts while long ones pay crash
    downtime — the classic rejuvenation trade-off the predictive policy
    escapes by restarting only when failure is near.
    """
    ttf = _check_ttf(ttf_samples)
    grid = np.linspace(0.05 * float(ttf.min()), 1.2 * float(ttf.max()), n_grid)
    best_tau, best_a = grid[0], -1.0
    for tau in grid:
        a = periodic_availability(
            ttf, float(tau), rejuvenation_downtime, crash_downtime
        )
        if a > best_a:
            best_tau, best_a = float(tau), a
    return best_tau, best_a


def _check_ttf(ttf_samples: np.ndarray) -> np.ndarray:
    ttf = np.asarray(ttf_samples, dtype=np.float64)
    if ttf.ndim != 1 or ttf.size == 0:
        raise ValueError("ttf_samples must be a non-empty 1-D array")
    if (ttf <= 0).any():
        raise ValueError("TTF samples must be positive")
    return ttf


def summarize(log: ManagedRunLog) -> AvailabilityReport:
    """Condense a :class:`ManagedRunLog` into an :class:`AvailabilityReport`."""
    uptimes = [e.uptime for e in log.episodes] or [0.0]
    return AvailabilityReport(
        policy=log.policy_name,
        availability=log.availability,
        n_crashes=log.n_crashes,
        n_rejuvenations=log.n_rejuvenations,
        total_uptime=log.total_uptime,
        total_downtime=log.total_downtime,
        mean_episode_uptime=float(np.mean(uptimes)),
    )
