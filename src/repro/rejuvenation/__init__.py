"""Proactive software rejuvenation on top of F2PM models.

The paper's motivation (Sec. I): with an RTTF model in hand, "proper
actions could be executed in advance to prevent upcoming system failures"
— *proactive rejuvenation* restarts the application shortly before the
predicted failure, converting a long unplanned outage into a short
planned one. The S-MAE threshold T is exactly the planning margin: an
RTTF error below T is harmless because the restart fires T seconds early
anyway.

This package closes the loop:

- :mod:`~repro.rejuvenation.policy` — when to restart: never (crash-only
  baseline), periodically (classic rejuvenation), or predictively from a
  trained F2PM model;
- :mod:`~repro.rejuvenation.controller` — a managed testbed simulation
  that monitors the live system through the streaming aggregator,
  consults the policy at every completed window, and accounts uptime /
  downtime per episode;
- :mod:`~repro.rejuvenation.metrics` — availability, crash counts,
  rejuvenation lead times;
- :mod:`~repro.rejuvenation.fleet` — N node loops under one policy
  engine: struct-of-arrays stream state, batched RTTF scoring (one
  model call per tick), capacity-floor restart staggering, and drain
  before kill.
"""

from repro.rejuvenation.policy import (
    RejuvenationPolicy,
    NoRejuvenation,
    PeriodicRejuvenation,
    PredictiveRejuvenation,
)
from repro.rejuvenation.controller import (
    ManagedSystemConfig,
    Episode,
    ManagedRunLog,
    ManagedSystem,
)
from repro.rejuvenation.metrics import AvailabilityReport, summarize
from repro.rejuvenation.fleet import (
    FleetConfig,
    FleetController,
    FleetReport,
    FleetRunLog,
    FleetSource,
    FleetStream,
    SimulatedFleetSource,
    SyntheticFleetSource,
    SyntheticFleetSpec,
    summarize_fleet,
)

__all__ = [
    "RejuvenationPolicy",
    "NoRejuvenation",
    "PeriodicRejuvenation",
    "PredictiveRejuvenation",
    "ManagedSystemConfig",
    "Episode",
    "ManagedRunLog",
    "ManagedSystem",
    "AvailabilityReport",
    "summarize",
    "FleetConfig",
    "FleetController",
    "FleetReport",
    "FleetRunLog",
    "FleetSource",
    "FleetStream",
    "SimulatedFleetSource",
    "SyntheticFleetSource",
    "SyntheticFleetSpec",
    "summarize_fleet",
]
