"""Fleet-scale rejuvenation: N managed nodes under one policy engine.

The single-server :class:`~repro.rejuvenation.controller.ManagedSystem`
closes the control loop for one app server. Production deployments run
*fleets* — N instances behind a load balancer — and the control plane
must score all of them in real time. This module promotes the loop to a
:class:`FleetController`:

- per-node sanitize + aggregate state lives **struct-of-arrays** in a
  :class:`FleetStream` (one ``(N, cap, 15)`` window buffer, one offset /
  anchor / ring-median array each), bit-identical to N independent
  ``StreamSanitizer`` + ``OnlineAggregator(policy="repair")`` pairs;
- RTTF scoring is **batched**: one ``model.predict`` call on an
  ``(n_due, 30)`` matrix per tick instead of N scalar predicts. A scalar
  per-node engine (``engine="scalar"``) is kept as the oracle, and the
  two are pinned bit-identical by tests — the same contract the ``fused``
  simulation substrate holds against the legacy ``loop``;
- a **fleet rejuvenation policy** staggers planned restarts so live
  capacity never drops below ``capacity_floor`` (crashes can still breach
  it — those are counted as floor violations), and drains a node for
  ``drain_seconds`` before killing it;
- fleet telemetry on the existing bus: ``fleet.live_fraction``,
  ``fleet.capacity_headroom``, ``fleet.predicted_failures_per_hour``
  (live nodes whose latest mean RTTF prediction is under one hour), and
  one per-node episode event per crash / rejuvenation / horizon.

A fleet of one node over a :class:`SimulatedFleetSource`, with
``capacity_floor=0`` and ``drain_seconds=0`` and grid-aligned downtimes,
reproduces ``ManagedSystem.run`` episode-for-episode, bit-exact — also
pinned by tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.core.aggregation import OnlineAggregator
from repro.core.datapoint import FEATURES
from repro.obs import get_logger, get_metrics, kv, span
from repro.rejuvenation.controller import (
    Episode,
    ManagedRunLog,
    ManagedSystemConfig,
)
from repro.rejuvenation.policy import (
    NoRejuvenation,
    PeriodicRejuvenation,
    PredictiveRejuvenation,
    RejuvenationPolicy,
)
from repro.system.anomalies import AnomalyProfile
from repro.system.failure import FailureCondition, MemoryExhaustion, SystemView
from repro.system.monitor import FeatureMonitorClient
from repro.system.resources import MachineState
from repro.system.server import AppServer
from repro.system.simulator import CampaignConfig
from repro.system.tpcw import EmulatedBrowserPool
from repro.utils.rng import as_rng

_log = get_logger("rejuvenation.fleet")

_N_RAW = len(FEATURES)

#: Node lifecycle states.
NODE_LIVE = 0  # serving traffic, policy consulted
NODE_DRAINING = 1  # planned restart granted; bleeding connections
NODE_DOWN = 2  # restarting (planned or crash downtime)
NODE_FINISHED = 3  # reached the simulation horizon


# -- configuration ----------------------------------------------------------------


@dataclass(frozen=True)
class FleetConfig:
    """Fleet topology and restart-staggering policy."""

    #: Number of managed nodes.
    n_nodes: int = 16
    #: Planned restarts are granted only while the fraction of non-down
    #: nodes stays >= this floor; excess requests wait their turn
    #: (re-requested every tick while the policy still wants them).
    #: Crashes ignore the floor — each breach counts a floor violation.
    capacity_floor: float = 0.0
    #: A granted node keeps serving (and can still crash) for this long
    #: before going down — connection draining. 0 kills immediately,
    #: which is what the single-node equivalence contract requires.
    drain_seconds: float = 0.0
    #: Scoring engine: "batched" (struct-of-arrays control plane, one
    #: predict per tick) or "scalar" (per-node objects — the oracle).
    engine: str = "batched"
    #: RTTF scoring plane: "exact" serves the policy model as-is (the
    #: default — bit-identical to the scalar oracle), "compiled" serves
    #: through :func:`repro.ml.serving.compile_predictor` (low-rank /
    #: reduced-precision, accuracy-gated at compile time). Compiled
    #: scoring requires the batched engine.
    scoring: str = "exact"
    #: Fleet-level series are emitted every this many ticks.
    telemetry_stride: int = 8

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if not 0.0 <= self.capacity_floor < 1.0:
            raise ValueError(
                f"capacity_floor must be in [0, 1), got {self.capacity_floor}"
            )
        if self.drain_seconds < 0:
            raise ValueError(
                f"drain_seconds must be >= 0, got {self.drain_seconds}"
            )
        if self.engine not in ("batched", "scalar"):
            raise ValueError(
                f"engine must be 'batched' or 'scalar', got {self.engine!r}"
            )
        if self.scoring not in ("exact", "compiled"):
            raise ValueError(
                f"scoring must be 'exact' or 'compiled', got {self.scoring!r}"
            )
        if self.scoring == "compiled" and self.engine != "batched":
            raise ValueError(
                "scoring='compiled' requires engine='batched'; the scalar "
                "engine is the exact oracle"
            )
        if self.telemetry_stride < 1:
            raise ValueError(
                f"telemetry_stride must be >= 1, got {self.telemetry_stride}"
            )


@dataclass
class FleetRunLog:
    """Everything a fleet simulation produced."""

    policy_name: str
    n_nodes: int
    node_logs: list[ManagedRunLog] = field(default_factory=list)
    #: Crashes that pushed live capacity below the configured floor.
    floor_violations: int = 0
    #: Planned-restart requests deferred (node-ticks spent waiting) to
    #: keep capacity above the floor.
    restarts_deferred: int = 0
    #: Lowest live fraction observed at any tick.
    min_live_fraction: float = 1.0
    #: Batched-scoring accounting: model calls made and rows scored.
    scoring_calls: int = 0
    scored_rows: int = 0
    #: Data-quality tallies summed over nodes.
    stream_dropped: int = 0
    late_dropped: int = 0

    @property
    def total_uptime(self) -> float:
        return sum(nl.total_uptime for nl in self.node_logs)

    @property
    def total_downtime(self) -> float:
        return sum(nl.total_downtime for nl in self.node_logs)

    @property
    def availability(self) -> float:
        total = self.total_uptime + self.total_downtime
        return self.total_uptime / total if total > 0 else 1.0

    @property
    def n_crashes(self) -> int:
        return sum(nl.n_crashes for nl in self.node_logs)

    @property
    def n_rejuvenations(self) -> int:
        return sum(nl.n_rejuvenations for nl in self.node_logs)

    @property
    def n_episodes(self) -> int:
        return sum(len(nl.episodes) for nl in self.node_logs)


@dataclass(frozen=True)
class FleetReport:
    """One row of a fleet policy-comparison table."""

    policy: str
    n_nodes: int
    availability: float
    n_crashes: int
    n_rejuvenations: int
    min_live_fraction: float
    restarts_deferred: int
    floor_violations: int

    HEADERS = (
        "policy",
        "nodes",
        "availability",
        "crashes",
        "rejuvenations",
        "min live frac",
        "deferred",
        "floor violations",
    )

    def row(self) -> list[object]:
        return [
            self.policy,
            self.n_nodes,
            self.availability,
            self.n_crashes,
            self.n_rejuvenations,
            self.min_live_fraction,
            self.restarts_deferred,
            self.floor_violations,
        ]


def summarize_fleet(log: FleetRunLog) -> FleetReport:
    """Condense a :class:`FleetRunLog` into a :class:`FleetReport`."""
    return FleetReport(
        policy=log.policy_name,
        n_nodes=log.n_nodes,
        availability=log.availability,
        n_crashes=log.n_crashes,
        n_rejuvenations=log.n_rejuvenations,
        min_live_fraction=log.min_live_fraction,
        restarts_deferred=log.restarts_deferred,
        floor_violations=log.floor_violations,
    )


# -- node sources -----------------------------------------------------------------


class FleetSource(ABC):
    """Produces monitor samples and crash signals for N nodes.

    The controller owns the clocks (per-node wall and episode-local
    ``now``) and the lifecycle; the source owns whatever it needs to
    advance a node by one tick. ``step`` receives the pre-tick ``now``
    values and must mirror the single-node loop's ordering: tick the
    server at ``now``, sample the monitor at ``now + dt``, then evaluate
    the failure condition.
    """

    #: Simulation tick, set by the concrete source.
    dt: float = 0.5
    n_nodes: int = 0

    @abstractmethod
    def bind(self, rngs: list, horizon: float) -> None:
        """Attach per-node RNG streams before the run starts."""

    @abstractmethod
    def boot(self, node: int) -> None:
        """(Re)start one node with fresh state."""

    @abstractmethod
    def step(
        self, ids: np.ndarray, walls: np.ndarray, nows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, "np.ndarray | list", np.ndarray]:
        """Advance the given nodes one tick.

        Returns ``(due_ids, sample_ids, rows, crashed)``: nodes whose
        monitor fired this tick (even if the sample was then eaten by a
        fault), the node id per produced raw row (repeats allowed —
        duplication faults), the raw rows (``(k, 15)`` array, or a list
        when shapes may be corrupted), and a crash flag aligned with
        ``ids``.
        """


class _SimNode:
    """Per-node simulation state for :class:`SimulatedFleetSource`."""

    __slots__ = ("state", "server", "fmc", "corruptor", "ewma_rt")

    def __init__(self, state, server, fmc, corruptor) -> None:
        self.state = state
        self.server = server
        self.fmc = fmc
        self.corruptor = corruptor
        self.ewma_rt = 0.0


class SimulatedFleetSource(FleetSource):
    """N full testbed simulations — machine, TPC-W pool, app server, FMC.

    Each node boots exactly like a ``ManagedSystem`` episode (same RNG
    spawn order, including the conditional corruptor spawn), so a fleet
    of one driven by ``as_rng(seed).spawn(1)[0]`` consumes the identical
    seed sequence as ``ManagedSystem.run(seed)``.
    """

    def __init__(
        self,
        campaign: CampaignConfig,
        failure_condition: "FailureCondition | None" = None,
        fault_profile=None,
    ) -> None:
        self.campaign = campaign
        self.failure_condition = failure_condition or MemoryExhaustion()
        self.fault_profile = fault_profile
        self.dt = campaign.dt

    def bind(self, rngs: list, horizon: float) -> None:
        self._rngs = rngs
        self._horizon = horizon
        self.n_nodes = len(rngs)
        self._nodes: list[_SimNode | None] = [None] * self.n_nodes

    def boot(self, node: int) -> None:
        cfg = self.campaign
        rng = self._rngs[node]
        r_profile, r_pool, r_server, r_monitor = rng.spawn(4)
        # Corruptor RNG spawned only when a fault profile is installed —
        # the same conditional spawn ManagedSystem performs, so clean
        # fleets consume the identical seed sequence.
        corruptor = (
            self.fault_profile.stream(rng.spawn(1)[0], horizon=self._horizon)
            if self.fault_profile is not None
            else None
        )
        profile = AnomalyProfile.draw(
            r_profile,
            p_leak_range=cfg.p_leak_range,
            leak_kb_range=cfg.leak_kb_range,
            p_thread_range=cfg.p_thread_range,
        )
        state = MachineState(cfg.machine)
        pool = EmulatedBrowserPool(cfg.n_browsers, cfg.mix, seed=r_pool)
        server = AppServer(cfg.server, state, pool, profile, seed=r_server)
        fmc = FeatureMonitorClient(cfg.monitor, seed=r_monitor)
        fmc.reset(0.0)
        self._nodes[node] = _SimNode(state, server, fmc, corruptor)

    def step(self, ids, walls, nows):
        cfg = self.campaign
        due_ids: list[int] = []
        sample_ids: list[int] = []
        rows: list[np.ndarray] = []
        crashed = np.zeros(ids.size, dtype=bool)
        for k, i in enumerate(ids):
            nd = self._nodes[i]
            now = nows[i]
            fraction = cfg.load_schedule.active_fraction(walls[i] + now)
            stats = nd.server.tick(now, cfg.dt, fraction)
            now += cfg.dt
            if stats.n_completed > 0:
                nd.ewma_rt += 0.2 * (stats.mean_response_time - nd.ewma_rt)
            if nd.fmc.due(now):
                due_ids.append(int(i))
                queue_delay = nd.server.backlog_cpu_s / cfg.machine.n_cpus
                dp = nd.fmc.sample(now, nd.state, stats.utilization, queue_delay)
                raw_rows = (
                    nd.corruptor.feed(dp.to_array())
                    if nd.corruptor is not None
                    else [dp.to_array()]
                )
                for raw in raw_rows:
                    sample_ids.append(int(i))
                    rows.append(raw)
            view = SystemView(
                state=nd.state,
                mean_response_time=nd.ewma_rt,
                last_generation_interval=nd.fmc.last_interval,
            )
            crashed[k] = self.failure_condition.is_failed(view)
        return (
            np.asarray(due_ids, dtype=np.int64),
            np.asarray(sample_ids, dtype=np.int64),
            rows,
            crashed,
        )


@dataclass(frozen=True)
class SyntheticFleetSpec:
    """Parametric aging model for cheap 10k-node fleets.

    Each node leaks memory at a per-node rate drawn at boot; it crashes
    when the leak exhausts RAM plus swap. The monitor cadence stretches
    under swap pressure (thrashing slows the exporter), so the
    ``gen_time`` feature carries signal just like in the full testbed.
    Fully vectorized — no per-node Python in the hot path.
    """

    dt: float = 0.5
    sample_interval: float = 1.5
    ram_kb: float = 524_288.0
    swap_kb: float = 262_144.0
    base_mem_kb: float = 200_000.0
    #: Per-node leak rate (KB/s), drawn uniformly at each boot.
    leak_rate_range: tuple[float, float] = (300.0, 900.0)
    #: Per-node monitor-cadence jitter, drawn once per boot.
    interval_jitter: float = 0.02

    @property
    def capacity_kb(self) -> float:
        return self.ram_kb + self.swap_kb

    @property
    def mean_ttf(self) -> float:
        lo, hi = self.leak_rate_range
        return (self.capacity_kb - self.base_mem_kb) / (0.5 * (lo + hi))

    def linear_model(self):
        """Hand-built RTTF model matched to this aging process.

        ``rttf ~= (capacity - mem_used - swap_used) / mean_rate`` — a
        plain :class:`~repro.ml.linear.LinearRegression` with the
        coefficients set directly, so fleet tests and benches get a real
        ``Regressor`` without paying for training.
        """
        from repro.core.datapoint import FEATURE_INDEX
        from repro.ml.linear import LinearRegression

        lo, hi = self.leak_rate_range
        mean_rate = 0.5 * (lo + hi)
        coef = np.zeros(2 * _N_RAW, dtype=np.float64)
        coef[FEATURE_INDEX["mem_used"]] = -1.0 / mean_rate
        coef[FEATURE_INDEX["swap_used"]] = -1.0 / mean_rate
        model = LinearRegression()
        model.coef_ = coef
        model.intercept_ = float(self.capacity_kb / mean_rate)
        return model


class SyntheticFleetSource(FleetSource):
    """Vectorized parametric node fleet (see :class:`SyntheticFleetSpec`)."""

    def __init__(self, spec: "SyntheticFleetSpec | None" = None) -> None:
        self.spec = spec or SyntheticFleetSpec()
        self.dt = self.spec.dt

    def bind(self, rngs: list, horizon: float) -> None:
        self._rngs = rngs
        self.n_nodes = n = len(rngs)
        self._mem = np.zeros(n, dtype=np.float64)
        self._rate = np.zeros(n, dtype=np.float64)
        self._ivl0 = np.zeros(n, dtype=np.float64)
        self._next_sample = np.zeros(n, dtype=np.float64)

    def boot(self, node: int) -> None:
        sp = self.spec
        rng = self._rngs[node]
        lo, hi = sp.leak_rate_range
        self._rate[node] = rng.uniform(lo, hi)
        jitter = sp.interval_jitter * (2.0 * rng.uniform() - 1.0)
        self._ivl0[node] = sp.sample_interval * (1.0 + jitter)
        self._mem[node] = sp.base_mem_kb
        self._next_sample[node] = self._ivl0[node]

    def step(self, ids, walls, nows):
        sp = self.spec
        now2 = nows[ids] + sp.dt
        self._mem[ids] += self._rate[ids] * sp.dt
        due = now2 >= self._next_sample[ids]
        due_ids = ids[due]
        rows = self._rows(due_ids, now2[due])
        # Swap pressure stretches the monitor cadence (thrash).
        press = np.clip(
            (self._mem[due_ids] - sp.ram_kb) / sp.swap_kb, 0.0, 1.0
        )
        self._next_sample[due_ids] = now2[due] + self._ivl0[due_ids] * (
            1.0 + 0.5 * press * press
        )
        crashed = self._mem[ids] >= sp.capacity_kb
        return due_ids, due_ids, rows, crashed

    def _rows(self, ids: np.ndarray, tgen: np.ndarray) -> np.ndarray:
        sp = self.spec
        k = ids.size
        mem = self._mem[ids]
        used = np.minimum(mem, sp.ram_kb)
        swap_used = np.clip(mem - sp.ram_kb, 0.0, sp.swap_kb)
        press = swap_used / sp.swap_kb
        frac = mem / sp.capacity_kb
        rows = np.zeros((k, _N_RAW), dtype=np.float64)
        rows[:, 0] = tgen
        rows[:, 1] = 64.0 + mem / 8192.0  # n_threads
        rows[:, 2] = used  # mem_used
        rows[:, 3] = sp.ram_kb - used  # mem_free
        rows[:, 4] = 12_288.0  # mem_shared
        rows[:, 5] = 8_192.0  # mem_buffers
        rows[:, 6] = 65_536.0 * (1.0 - press)  # mem_cached
        rows[:, 7] = swap_used
        rows[:, 8] = sp.swap_kb - swap_used  # swap_free
        cpu_user = 25.0 + 50.0 * frac
        cpu_sys = 5.0 + 10.0 * press
        cpu_iowait = 30.0 * press
        rows[:, 9] = cpu_user
        rows[:, 11] = cpu_sys
        rows[:, 12] = cpu_iowait
        rows[:, 14] = np.maximum(0.0, 100.0 - cpu_user - cpu_sys - cpu_iowait)
        return rows

    def true_rttf(self, ids: np.ndarray) -> np.ndarray:
        """Ground-truth remaining time to failure (for benches/tests)."""
        sp = self.spec
        return (sp.capacity_kb - self._mem[ids]) / self._rate[ids]


# -- struct-of-arrays sanitize + aggregate plane ----------------------------------


class FleetStream:
    """Struct-of-arrays sanitize+aggregate state for N node streams.

    Bit-identical to N independent ``StreamSanitizer`` +
    ``OnlineAggregator(window_seconds, policy="repair")`` pairs (the
    scalar oracle, pinned by tests): same drop rules, same clock-reset
    rebase arithmetic, same repair-mode bounded reordering, same
    ``np.add.reduceat`` sequential segment sums at finalize. A batch may
    contain several rows for one node (duplication faults): it is split
    into rounds of unique node ids so sequential per-node semantics are
    preserved while each round stays fully vectorized.
    """

    _RING = 32  # matches StreamSanitizer's last-32-interval median window

    def __init__(
        self,
        n_nodes: int,
        window_seconds: float,
        sanitize_config=None,
        *,
        min_points: int = 1,
        row_capacity: int = 64,
    ) -> None:
        from repro.core.sanitize import SanitizeConfig

        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {window_seconds}"
            )
        self.n_nodes = n_nodes
        self.window_seconds = window_seconds
        self.min_points = min_points
        self._cfg = sanitize_config or SanitizeConfig()
        n = n_nodes
        # sanitizer state (mirrors StreamSanitizer attributes)
        self._offset = np.zeros(n, dtype=np.float64)
        self._smax = np.zeros(n, dtype=np.float64)
        self._ring = np.zeros((n, self._RING), dtype=np.float64)
        self._rlen = np.zeros(n, dtype=np.int64)
        self._rpos = np.zeros(n, dtype=np.int64)
        self._dropped = np.zeros(n, dtype=np.int64)
        self._resets = np.zeros(n, dtype=np.int64)
        # aggregator state (mirrors OnlineAggregator attributes)
        self._cap = int(row_capacity)
        self._wbuf = np.zeros((n, self._cap, _N_RAW), dtype=np.float64)
        self._wcount = np.zeros(n, dtype=np.int64)
        self._bin = np.zeros(n, dtype=np.int64)
        self._has_bin = np.zeros(n, dtype=bool)
        self._last_tgen = np.zeros(n, dtype=np.float64)
        self._anchor = np.zeros(n, dtype=np.float64)
        self._unsorted = np.zeros(n, dtype=bool)
        self._late = np.zeros(n, dtype=np.int64)

    @property
    def dropped_total(self) -> int:
        return int(self._dropped.sum())

    @property
    def late_dropped(self) -> int:
        return int(self._late.sum())

    @property
    def resets_total(self) -> int:
        return int(self._resets.sum())

    def reset_node(self, i: int) -> None:
        """Forget one node's stream state (after a restart).

        Cumulative data-quality counters survive, exactly like
        ``StreamSanitizer.reset`` / ``OnlineAggregator.reset``.
        """
        self._offset[i] = 0.0
        self._smax[i] = 0.0
        self._rlen[i] = 0
        self._rpos[i] = 0
        self._wcount[i] = 0
        self._bin[i] = 0
        self._has_bin[i] = False
        self._last_tgen[i] = 0.0
        self._anchor[i] = 0.0
        self._unsorted[i] = False

    def ingest(
        self, ids: np.ndarray, rows: "np.ndarray | list"
    ) -> dict[int, np.ndarray]:
        """Feed a tick's raw rows; return completed windows per node.

        When one node completes several windows in one tick, only the
        last survives — the same "last completed window wins" the
        single-node loop implements.
        """
        ids = np.asarray(ids, dtype=np.int64)
        out: dict[int, np.ndarray] = {}
        if ids.size == 0:
            return out
        X = self._coerce(ids, rows)
        ids = X[0]
        X = X[1]
        # Rounds of unique node ids: per-node sequential semantics with
        # vectorized rounds. Clean streams have one row per node — one
        # round.
        while ids.size:
            _, first = np.unique(ids, return_index=True)
            take = np.zeros(ids.size, dtype=bool)
            take[first] = True
            self._ingest_unique(ids[take], X[take], out)
            ids, X = ids[~take], X[~take]
        return out

    def _coerce(self, ids, rows):
        """Shape-screen raw rows into an (k, 15) float64 matrix.

        Mis-shaped rows (truncation faults) are dropped and counted here,
        mirroring the scalar sanitizer's shape check; the remaining
        checks vectorize over the clean matrix.
        """
        if isinstance(rows, np.ndarray) and rows.ndim == 2 and rows.shape[1] == _N_RAW:
            return ids, rows.astype(np.float64, copy=False)
        good: list[np.ndarray] = []
        gids: list[int] = []
        nbad = 0
        for i, raw in zip(ids, rows):
            arr = np.asarray(raw, dtype=np.float64)
            if arr.shape != (_N_RAW,):
                self._dropped[i] += 1
                nbad += 1
                continue
            gids.append(int(i))
            good.append(arr)
        if nbad:
            get_metrics().inc("sanitize.stream_dropped_total", float(nbad))
        if not good:
            return np.empty(0, dtype=np.int64), np.empty((0, _N_RAW))
        return np.asarray(gids, dtype=np.int64), np.vstack(good)

    def _ingest_unique(self, ids, X, out) -> None:
        metrics = get_metrics()
        # -- sanitizer: drop non-finite / negative-tgen rows
        ok = np.isfinite(X).all(axis=1) & (X[:, 0] >= 0)
        if not ok.all():
            bad = ids[~ok]
            self._dropped[bad] += 1
            metrics.inc("sanitize.stream_dropped_total", float(bad.size))
        ids, X = ids[ok], X[ok]
        if not ids.size:
            return
        tgen = X[:, 0] + self._offset[ids]
        # -- clock-reset rebase (rare; per-candidate scalar path)
        cand = np.flatnonzero(
            (self._rlen[ids] > 0)
            & (tgen < self._cfg.clock_reset_fraction * self._smax[ids])
        )
        n_resets = 0
        for k in cand:
            i = ids[k]
            med = float(np.median(self._ring[i, : self._rlen[i]]))
            if med > 0 and self._smax[i] - tgen[k] > self._cfg.min_reset_drop * med:
                self._offset[i] += self._smax[i] + med - tgen[k]
                tgen[k] = X[k, 0] + self._offset[i]
                self._resets[i] += 1
                n_resets += 1
        if n_resets:
            metrics.inc("sanitize.stream_resets_total", float(n_resets))
        # -- interval ring (median tracker) + monotone max advance
        adv = tgen > self._smax[ids]
        app = adv & (self._smax[ids] > 0)
        ai = ids[app]
        if ai.size:
            pos = self._rpos[ai]
            self._ring[ai, pos] = tgen[app] - self._smax[ai]
            self._rpos[ai] = (pos + 1) % self._RING
            self._rlen[ai] = np.minimum(self._rlen[ai] + 1, self._RING)
        self._smax[ids[adv]] = tgen[adv]
        # Rewrite the clock column only where an offset is active — the
        # scalar sanitizer leaves untouched rows byte-identical.
        off = self._offset[ids] != 0.0
        if off.any():
            X = X.copy()
            X[off, 0] = tgen[off]
        # -- aggregator, repair mode
        nbin = (tgen // self.window_seconds).astype(np.int64)
        late = tgen < self._last_tgen[ids]
        drop_late = late & (~self._has_bin[ids] | (nbin < self._bin[ids]))
        if drop_late.any():
            self._late[ids[drop_late]] += 1
            metrics.inc("sanitize.online_late_dropped", float(drop_late.sum()))
        ins_late = late & ~drop_late
        in_order = ~late
        fin = (
            in_order
            & self._has_bin[ids]
            & (nbin != self._bin[ids])
            & (self._wcount[ids] > 0)
        )
        if fin.any():
            kept, wins = self._finalize(ids[fin])
            for j, w in zip(kept, wins):
                out[int(j)] = w
        need = int(self._wcount[ids].max()) + 1
        if need > self._cap:
            self._grow(need)
        li = ids[ins_late]
        if li.size:
            # Late but inside the open window: buffer out of order; the
            # finalize pass re-sorts, exactly like the scalar repair mode.
            self._wbuf[li, self._wcount[li]] = X[ins_late]
            self._wcount[li] += 1
            self._unsorted[li] = True
        ii = ids[in_order]
        if ii.size:
            self._bin[ii] = nbin[in_order]
            self._has_bin[ii] = True
            self._wbuf[ii, self._wcount[ii]] = X[in_order]
            self._wcount[ii] += 1
            self._last_tgen[ii] = tgen[in_order]

    def _grow(self, need: int) -> None:
        new_cap = max(2 * self._cap, need)
        buf = np.zeros((self.n_nodes, new_cap, _N_RAW), dtype=np.float64)
        buf[:, : self._cap] = self._wbuf
        self._wbuf = buf
        self._cap = new_cap

    def _finalize(self, sub: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Aggregate the open window of each node in ``sub``.

        One vectorized pass over the concatenated row segments: a stable
        ``lexsort`` restores per-node timestamp order where bounded
        reordering happened, ``np.add.reduceat`` computes the sequential
        segment sums (the exact summation order of the scalar path — not
        ``np.mean``'s pairwise sums), and the interval chain is rebuilt
        from each node's anchor (the previous window's last timestamp),
        which equals the scalar path's stored per-append intervals.
        """
        counts = self._wcount[sub]
        m = sub.size
        maxc = int(counts.max())
        blocks = self._wbuf[sub, :maxc]
        valid = np.arange(maxc)[None, :] < counts[:, None]
        rows = blocks[valid]
        if self._unsorted[sub].any():
            seg = np.repeat(np.arange(m), counts)
            order = np.lexsort((rows[:, 0], seg))
            rows = rows[order]
        starts = np.zeros(m, dtype=np.intp)
        np.cumsum(counts[:-1], out=starts[1:])
        ends = starts + counts - 1
        sums = np.add.reduceat(rows, starts, axis=0)
        means = sums / counts[:, None]
        slopes = (rows[ends, 1:] - rows[starts, 1:]) / counts[:, None]
        tg = rows[:, 0]
        prev = np.empty_like(tg)
        prev[1:] = tg[:-1]
        prev[starts] = self._anchor[sub]
        gen = np.add.reduceat(tg - prev, starts) / counts
        wins = np.concatenate([means, slopes, gen[:, None]], axis=1)
        self._anchor[sub] = tg[ends]
        self._wcount[sub] = 0
        self._unsorted[sub] = False
        keep = counts >= self.min_points
        return sub[keep], wins[keep]


# -- control planes ---------------------------------------------------------------


class _ScalarPlane:
    """Per-node-object control plane: the oracle the batched plane matches."""

    def __init__(self, n, window_seconds, sanitize_config, policy) -> None:
        from repro.core.sanitize import StreamSanitizer

        self._san = [StreamSanitizer(sanitize_config) for _ in range(n)]
        self._agg = [
            OnlineAggregator(window_seconds, policy="repair") for _ in range(n)
        ]
        self._pol = [policy.clone() for _ in range(n)]

    def reset_node(self, i: int) -> None:
        self._san[i].reset()
        self._agg[i].reset()
        self._pol[i].reset()

    def ingest(self, ids, rows) -> dict[int, np.ndarray]:
        out: dict[int, np.ndarray] = {}
        for i, raw in zip(ids, rows):
            i = int(i)
            decision = self._san[i].process(raw)
            if decision.row is None:
                continue
            window = self._agg[i].add(decision.row)
            if window is not None:
                out[i] = window
        return out

    def consult(self, ids, X, ages):
        n = ids.size
        trig = np.zeros(n, dtype=bool)
        preds = np.full(n, np.nan)
        lbs = np.full(n, np.nan)
        for k in range(n):
            pol = self._pol[int(ids[k])]
            trig[k] = pol.should_rejuvenate(X[k], run_age=float(ages[k]))
            pred = getattr(pol, "last_prediction", None)
            if pred is not None:
                preds[k] = pred
            lb = getattr(pol, "last_lower_bound", None)
            if lb is not None:
                lbs[k] = lb
        return trig, preds, lbs

    def time_triggers(self, ids, ages):
        return np.fromiter(
            (
                self._pol[int(i)].time_trigger(float(a))
                for i, a in zip(ids, ages)
            ),
            dtype=bool,
            count=ids.size,
        )

    def last_prediction(self, i: int) -> "float | None":
        return getattr(self._pol[int(i)], "last_prediction", None)

    def predicted_failures(self, ids, horizon_s: float) -> int:
        n = 0
        for i in ids:
            pred = getattr(self._pol[int(i)], "last_prediction", None)
            if pred is not None and pred < horizon_s:
                n += 1
        return n

    def stats(self) -> dict[str, int]:
        return {
            "stream_dropped": sum(s.dropped_total for s in self._san),
            "late_dropped": sum(a.late_dropped for a in self._agg),
        }


class _BatchedPlane:
    """Struct-of-arrays control plane with one model call per tick."""

    def __init__(
        self, n, window_seconds, sanitize_config, policy, scoring="exact"
    ) -> None:
        self.stream = FleetStream(n, window_seconds, sanitize_config)
        self.policy = policy
        self._streak = np.zeros(n, dtype=np.int64)
        self._pred = np.full(n, np.nan)
        self._lb = np.full(n, np.nan)
        if isinstance(policy, PredictiveRejuvenation):
            self._kind = "predictive"
        elif isinstance(policy, PeriodicRejuvenation):
            self._kind = "periodic"
        elif isinstance(policy, NoRejuvenation):
            self._kind = "none"
        else:
            raise ValueError(
                f"the batched engine vectorizes the built-in policies only, "
                f"got {type(policy).__name__}; use FleetConfig(engine='scalar') "
                f"for custom policies"
            )
        # The serving model: exact scoring uses the policy model object
        # itself (preserving the batched == scalar bit-identity
        # contract); compiled scoring serves through the compiled
        # predict plane. An already-compiled model is used as-is so the
        # caller controls budget/gate; otherwise compile ungated — a
        # non-kernel model falls through as a passthrough wrapper.
        self._model = getattr(policy, "model", None)
        if scoring == "compiled" and self._kind == "predictive":
            from repro.ml.serving import CompiledPredictor, compile_predictor

            if not isinstance(self._model, CompiledPredictor):
                self._model = compile_predictor(self._model)

    def reset_node(self, i: int) -> None:
        self.stream.reset_node(i)
        self._streak[i] = 0
        self._pred[i] = np.nan
        self._lb[i] = np.nan

    def ingest(self, ids, rows) -> dict[int, np.ndarray]:
        return self.stream.ingest(ids, rows)

    def consult(self, ids, X, ages):
        n = ids.size
        if self._kind != "predictive" or n == 0:
            if self._kind == "periodic":
                trig = ages >= self.policy.interval_seconds
            else:
                trig = np.zeros(n, dtype=bool)
            return trig, np.full(n, np.nan), np.full(n, np.nan)
        pol = self.policy
        Xs = X[:, pol.feature_indices] if pol.feature_indices is not None else X
        if pol.lower_bound_quantile is not None:
            lower, mean, _ = self._model.predict_interval(
                Xs, pol.lower_bound_quantile
            )
            acted = np.asarray(lower, dtype=np.float64)
            self._pred[ids] = np.asarray(mean, dtype=np.float64)
            self._lb[ids] = acted
        else:
            acted = np.asarray(self._model.predict(Xs), dtype=np.float64)
            self._pred[ids] = acted
            self._lb[ids] = np.nan
        below = acted < pol.rttf_margin
        self._streak[ids] = np.where(below, self._streak[ids] + 1, 0)
        trig = self._streak[ids] >= pol.consecutive
        return trig, self._pred[ids].copy(), self._lb[ids].copy()

    def time_triggers(self, ids, ages):
        if self._kind == "periodic":
            return ages >= self.policy.interval_seconds
        return np.zeros(ids.size, dtype=bool)

    def last_prediction(self, i: int) -> "float | None":
        pred = self._pred[i]
        return None if np.isnan(pred) else float(pred)

    def predicted_failures(self, ids, horizon_s: float) -> int:
        preds = self._pred[ids]
        return int((~np.isnan(preds) & (preds < horizon_s)).sum())

    def stats(self) -> dict[str, int]:
        return {
            "stream_dropped": self.stream.dropped_total,
            "late_dropped": self.stream.late_dropped,
        }


# -- the fleet controller ---------------------------------------------------------


class FleetController:
    """N managed node loops under one policy engine and capacity planner.

    The global loop advances all non-down nodes by one tick per
    iteration, ingests the tick's monitor samples through the control
    plane, scores every node that completed a window (or is flying on a
    held one) with **one** batched model call, and then arbitrates
    restarts: planned restarts are granted in node order while the live
    fraction stays above ``capacity_floor``; crashes are immediate.
    """

    def __init__(
        self,
        source: FleetSource,
        managed: ManagedSystemConfig,
        policy: RejuvenationPolicy,
        fleet: "FleetConfig | None" = None,
        sanitize_config=None,
    ) -> None:
        self.source = source
        self.managed = managed
        self.policy = policy
        self.fleet = fleet or FleetConfig()
        self.sanitize_config = sanitize_config

    def run(self, seed: "int | None | np.random.Generator" = None) -> FleetRunLog:
        """Simulate the fleet for the configured horizon."""
        fcfg, mcfg = self.fleet, self.managed
        run_span = span(
            "fleet.run",
            policy=self.policy.name,
            n_nodes=fcfg.n_nodes,
            engine=fcfg.engine,
            scoring=fcfg.scoring,
            horizon_s=mcfg.horizon_seconds,
        ).__enter__()
        log = FleetRunLog(
            policy_name=self.policy.name,
            n_nodes=fcfg.n_nodes,
            node_logs=[
                ManagedRunLog(policy_name=self.policy.name)
                for _ in range(fcfg.n_nodes)
            ],
        )
        try:
            return self._run(fcfg, mcfg, log, seed)
        finally:
            run_span.set(
                episodes=log.n_episodes,
                crashes=log.n_crashes,
                rejuvenations=log.n_rejuvenations,
                availability=log.availability,
                min_live_fraction=log.min_live_fraction,
            ).__exit__()

    def _run(self, fcfg, mcfg, log, seed) -> FleetRunLog:
        from repro.obs import get_telemetry
        from repro.obs.profile import get_profiler

        n = fcfg.n_nodes
        rng = as_rng(seed)
        rngs = list(rng.spawn(n))
        self.source.bind(rngs, mcfg.horizon_seconds)
        dt = self.source.dt
        horizon = mcfg.horizon_seconds
        staleness = mcfg.resolved_staleness_timeout
        if fcfg.engine == "batched":
            plane = _BatchedPlane(
                n,
                mcfg.window_seconds,
                self.sanitize_config,
                self.policy,
                scoring=fcfg.scoring,
            )
        else:
            plane = _ScalarPlane(
                n, mcfg.window_seconds, self.sanitize_config, self.policy
            )
        bus = get_telemetry()
        metrics = get_metrics()
        profiler = get_profiler()

        status = np.full(n, NODE_LIVE, dtype=np.int8)
        walls = np.zeros(n, dtype=np.float64)
        nows = np.zeros(n, dtype=np.float64)
        ep_start = np.zeros(n, dtype=np.float64)
        down_until = np.zeros(n, dtype=np.float64)
        drain_until = np.full(n, np.inf, dtype=np.float64)
        last_window = np.zeros((n, 2 * _N_RAW), dtype=np.float64)
        has_lw = np.zeros(n, dtype=bool)
        lw_time = np.zeros(n, dtype=np.float64)
        next_held = np.zeros(n, dtype=np.float64)
        wants = np.zeros(n, dtype=bool)
        ep_pred: list[float | None] = [None] * n
        # Predictions made per episode, so the true RTTF can be emitted
        # retrospectively on crash: (global time, episode age, predicted).
        pending: list[list[tuple[float, float, float]]] = [[] for _ in range(n)]
        allowed_down = int(np.floor((1.0 - fcfg.capacity_floor) * n + 1e-9))

        for i in range(n):
            self.source.boot(i)
            plane.reset_node(i)

        def end_episode(i: int, outcome: str) -> None:
            nl = log.node_logs[i]
            uptime = min(nows[i], horizon - walls[i])
            nl.total_uptime += uptime
            walls[i] += uptime
            predicted = ep_pred[i] if outcome == "rejuvenation" else None
            nl.episodes.append(
                Episode(
                    start=ep_start[i],
                    end=ep_start[i] + uptime,
                    outcome=outcome,
                    predicted_rttf=predicted,
                )
            )
            end_t = ep_start[i] + uptime
            if outcome == "crash":
                for t_pred, age, pred in pending[i]:
                    truth = nows[i] - age
                    bus.emit("fleet.rttf_error", t_pred, pred - truth)
            bus.event(
                end_t,
                outcome,
                node=i,
                policy=self.policy.name,
                uptime_s=uptime,
                predicted_rttf=predicted,
            )
            metrics.inc(f"fleet.episodes_total.{outcome}")
            pending[i].clear()
            ep_pred[i] = None
            wants[i] = False
            drain_until[i] = np.inf
            if outcome == "horizon":
                status[i] = NODE_FINISHED
                return
            downtime = (
                mcfg.rejuvenation_downtime
                if outcome == "rejuvenation"
                else mcfg.crash_downtime
            )
            downtime = min(downtime, horizon - walls[i])
            nl.total_downtime += downtime
            walls[i] += downtime
            if walls[i] >= horizon:
                status[i] = NODE_FINISHED
            else:
                status[i] = NODE_DOWN
                # A node may reboot once the global clock has covered its
                # consumed wall time (uptime + downtime so far) — exact on
                # the tick grid when downtimes are multiples of dt.
                down_until[i] = walls[i]

        t = 0.0
        it = 0
        max_iters = 4 * int(np.ceil(horizon / dt)) + 64
        while (status != NODE_FINISHED).any():
            if it > max_iters:
                raise RuntimeError(
                    f"fleet loop exceeded {max_iters} iterations — "
                    "a node is not making progress"
                )
            # 1. reboot nodes whose downtime has elapsed
            boots = np.flatnonzero(
                (status == NODE_DOWN) & (down_until <= t + 1e-9)
            )
            for i in boots:
                i = int(i)
                self.source.boot(i)
                plane.reset_node(i)
                nows[i] = 0.0
                ep_start[i] = walls[i]
                has_lw[i] = False
                lw_time[i] = 0.0
                next_held[i] = 0.0
                status[i] = NODE_LIVE
            running = np.flatnonzero(
                (status == NODE_LIVE) | (status == NODE_DRAINING)
            )
            if running.size == 0:
                t += dt
                it += 1
                continue
            # 2. horizon pre-check (mirrors `while wall + now < horizon`)
            cont = walls[running] + nows[running] < horizon
            for i in running[~cont]:
                end_episode(int(i), "horizon")
            running = running[cont]
            if running.size:
                # 3. tick all running nodes
                due_ids, sample_ids, rows, crashed = self.source.step(
                    running, walls, nows
                )
                nows[running] += dt
                # 4. sanitize + aggregate the tick's samples
                completed = plane.ingest(sample_ids, rows)
                comp_ids = np.asarray(sorted(completed), dtype=np.int64)
                for i in comp_ids:
                    i = int(i)
                    last_window[i] = completed[i]
                    has_lw[i] = True
                    lw_time[i] = nows[i]
                # 5. build the scoring set: freshly completed windows of
                # live nodes + stale-hold re-evaluations
                consult_ids = comp_ids[status[comp_ids] == NODE_LIVE]
                if due_ids.size:
                    d = due_ids[status[due_ids] == NODE_LIVE]
                    d = d[~np.isin(d, comp_ids)]
                    stale = d[
                        has_lw[d]
                        & (nows[d] - lw_time[d] > staleness)
                        & (nows[d] >= next_held[d])
                    ]
                else:
                    stale = np.empty(0, dtype=np.int64)
                if stale.size:
                    next_held[stale] = nows[stale] + mcfg.window_seconds
                    metrics.inc("fleet.stale_holds_total", float(stale.size))
                score_ids = np.concatenate([consult_ids, stale])
                if score_ids.size:
                    X = np.concatenate(
                        [
                            np.vstack([completed[int(i)] for i in consult_ids])
                            if consult_ids.size
                            else np.empty((0, 2 * _N_RAW)),
                            last_window[stale],
                        ]
                    )
                    with profiler.stage("fleet.predict"):
                        trig, preds, _lbs = plane.consult(
                            score_ids, X, nows[score_ids]
                        )
                    log.scoring_calls += 1
                    log.scored_rows += int(score_ids.size)
                    for k, i in enumerate(score_ids):
                        if not np.isnan(preds[k]):
                            i = int(i)
                            pending[i].append(
                                (walls[i] + nows[i], nows[i], float(preds[k]))
                            )
                    # Fresh policy decisions overwrite any queued request:
                    # a node whose prediction recovered above the margin
                    # withdraws from the restart queue.
                    wants[score_ids] = trig
                # 6. time-based triggers, evaluated every tick
                live = running[status[running] == NODE_LIVE]
                tt = plane.time_triggers(live, nows[live])
                wants[live[tt]] = True
                # 7. grant planned restarts while capacity stays above the
                # floor; the rest wait (and re-request next tick)
                requests = np.flatnonzero(wants & (status == NODE_LIVE))
                if requests.size:
                    committed = int(
                        ((status == NODE_DOWN) | (status == NODE_DRAINING)).sum()
                    )
                    slots = max(0, allowed_down - committed)
                    granted = requests[:slots]
                    log.restarts_deferred += int(requests.size - granted.size)
                    for i in granted:
                        i = int(i)
                        wants[i] = False
                        ep_pred[i] = plane.last_prediction(i)
                        if fcfg.drain_seconds > 0:
                            status[i] = NODE_DRAINING
                            drain_until[i] = nows[i] + fcfg.drain_seconds
                        else:
                            end_episode(i, "rejuvenation")
                # 8. drains that have bled dry restart cleanly
                drained = np.flatnonzero(
                    (status == NODE_DRAINING) & (nows >= drain_until - 1e-9)
                )
                for i in drained:
                    end_episode(int(i), "rejuvenation")
                # 9. crashes (a trigger in the same tick wins, exactly like
                # the single-node loop's break-before-failure-check)
                for k in np.flatnonzero(crashed):
                    i = int(running[k])
                    if status[i] in (NODE_LIVE, NODE_DRAINING):
                        end_episode(i, "crash")
                        n_down = int((status == NODE_DOWN).sum())
                        if n_down > allowed_down:
                            log.floor_violations += 1
                            metrics.inc("fleet.floor_violations_total")
            # 10. capacity bookkeeping + fleet telemetry
            live_frac = 1.0 - float((status == NODE_DOWN).sum()) / n
            if live_frac < log.min_live_fraction:
                log.min_live_fraction = live_frac
            if it % fcfg.telemetry_stride == 0:
                bus.emit("fleet.live_fraction", t, live_frac)
                bus.emit(
                    "fleet.capacity_headroom", t, live_frac - fcfg.capacity_floor
                )
                live_now = np.flatnonzero(status == NODE_LIVE)
                bus.emit(
                    "fleet.predicted_failures_per_hour",
                    t,
                    float(plane.predicted_failures(live_now, 3600.0)),
                )
            t += dt
            it += 1

        stats = plane.stats()
        log.stream_dropped = int(stats["stream_dropped"])
        log.late_dropped = int(stats["late_dropped"])
        _log.info(
            "fleet run complete %s",
            kv(
                policy=self.policy.name,
                nodes=n,
                engine=fcfg.engine,
                scoring=fcfg.scoring,
                episodes=log.n_episodes,
                crashes=log.n_crashes,
                rejuvenations=log.n_rejuvenations,
                availability=log.availability,
                min_live_fraction=log.min_live_fraction,
            ),
        )
        return log
