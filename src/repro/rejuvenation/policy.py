"""Rejuvenation policies: when to force the system to a clean state.

A policy is consulted once per completed aggregation window with the
window's 30-column feature row (the same schema F2PM trains on) and the
current run age; it answers whether to rejuvenate *now*.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod

import numpy as np

from repro.ml.base import Regressor


class RejuvenationPolicy(ABC):
    """Decides, per completed monitoring window, whether to restart."""

    @abstractmethod
    def should_rejuvenate(self, window_row: np.ndarray, run_age: float) -> bool:
        """True to trigger a planned restart now.

        Parameters
        ----------
        window_row : (30,) aggregated feature row of the just-completed
            window (``AGGREGATED_FEATURES`` order).
        run_age : float
            Seconds since the current episode started.
        """

    def time_trigger(self, run_age: float) -> bool:
        """Purely time-based trigger, independent of the monitor stream.

        The controller evaluates this every tick, so a wedged monitor (or
        a sanitizer dropping every sample before the first window
        completes) cannot starve a time-based policy. Stream-driven
        policies return False here and act through
        :meth:`should_rejuvenate` instead.
        """
        return False

    def reset(self) -> None:
        """Called after every restart (planned or crash)."""

    def clone(self) -> "RejuvenationPolicy":
        """Fresh-state copy for per-node fleet use.

        The copy is shallow — heavyweight immutable collaborators (the
        fitted model) are shared — but decision state is reset, so clones
        of one prototype drive independent nodes.
        """
        twin = copy.copy(self)
        twin.reset()
        return twin

    @property
    def name(self) -> str:
        return type(self).__name__


class NoRejuvenation(RejuvenationPolicy):
    """Crash-only baseline: never restart proactively."""

    def should_rejuvenate(self, window_row: np.ndarray, run_age: float) -> bool:
        return False

    @property
    def name(self) -> str:
        return "none"


class PeriodicRejuvenation(RejuvenationPolicy):
    """Classic time-based rejuvenation: restart every ``interval`` seconds.

    The standard pre-F2PM practice (Kolettis & Fulton): robust but blind —
    the interval must be tuned to the *worst-case* anomaly rate, wasting
    useful life on mild runs and still crashing on severe ones.
    """

    def __init__(self, interval_seconds: float) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be positive, got {interval_seconds}"
            )
        self.interval_seconds = interval_seconds

    def should_rejuvenate(self, window_row: np.ndarray, run_age: float) -> bool:
        return run_age >= self.interval_seconds

    def time_trigger(self, run_age: float) -> bool:
        return run_age >= self.interval_seconds

    @property
    def name(self) -> str:
        return f"periodic({self.interval_seconds:.0f}s)"


class PredictiveRejuvenation(RejuvenationPolicy):
    """F2PM-driven policy: restart when the predicted RTTF drops below a
    margin for ``consecutive`` windows in a row.

    The consecutive-window debounce guards against single-window
    prediction spikes (the model's error far from failure is large —
    paper Fig. 5 — so a lone pessimistic prediction early in a run should
    not trigger a restart).

    Parameters
    ----------
    model : a fitted F2PM regressor (30-feature input).
    rttf_margin : float
        Restart when predicted RTTF < this many seconds.
    consecutive : int
        Number of consecutive sub-margin predictions required.
    feature_indices : optional column subset if the model was trained on
        a Lasso-selected feature set.
    lower_bound_quantile : if set and the model exposes
        ``predict_interval`` (e.g. :class:`~repro.ml.ensemble.BaggingRegressor`),
        act on the lower RTTF bound at this quantile instead of the mean
        prediction — a conservative variant that restarts earlier when
        the ensemble disagrees.
    """

    def __init__(
        self,
        model: Regressor,
        rttf_margin: float,
        consecutive: int = 2,
        feature_indices: "np.ndarray | None" = None,
        lower_bound_quantile: "float | None" = None,
    ) -> None:
        if rttf_margin <= 0:
            raise ValueError(f"rttf_margin must be positive, got {rttf_margin}")
        if consecutive < 1:
            raise ValueError(f"consecutive must be >= 1, got {consecutive}")
        if lower_bound_quantile is not None:
            if not 0.0 < lower_bound_quantile < 0.5:
                raise ValueError(
                    f"lower_bound_quantile must be in (0, 0.5), got "
                    f"{lower_bound_quantile}"
                )
            if not hasattr(model, "predict_interval"):
                raise ValueError(
                    "lower_bound_quantile requires a model exposing "
                    "predict_interval (e.g. BaggingRegressor)"
                )
        self.model = model
        self.rttf_margin = rttf_margin
        self.consecutive = consecutive
        self.feature_indices = feature_indices
        self.lower_bound_quantile = lower_bound_quantile
        self._streak = 0
        #: Mean RTTF prediction of the most recent consult.
        self.last_prediction: float | None = None
        #: Lower RTTF bound of the most recent consult, when
        #: ``lower_bound_quantile`` is set (else None). The *bound* drives
        #: the trigger; the *mean* is what telemetry and episode logs
        #: report — conflating the two would bias every predicted-vs-truth
        #: series by the ensemble spread.
        self.last_lower_bound: float | None = None

    def should_rejuvenate(self, window_row: np.ndarray, run_age: float) -> bool:
        row = np.asarray(window_row, dtype=np.float64)
        if self.feature_indices is not None:
            row = row[self.feature_indices]
        if self.lower_bound_quantile is not None:
            lower, mean, _ = self.model.predict_interval(
                row[None, :], self.lower_bound_quantile
            )
            acted = float(lower[0])
            self.last_prediction = float(mean[0])
            self.last_lower_bound = acted
        else:
            acted = float(self.model.predict(row[None, :])[0])
            self.last_prediction = acted
            self.last_lower_bound = None
        if acted < self.rttf_margin:
            self._streak += 1
        else:
            self._streak = 0
        return self._streak >= self.consecutive

    def reset(self) -> None:
        self._streak = 0
        self.last_prediction = None
        self.last_lower_bound = None

    @property
    def name(self) -> str:
        return f"predictive(margin={self.rttf_margin:.0f}s)"
