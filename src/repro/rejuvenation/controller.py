"""Managed-system simulation: the testbed under a rejuvenation policy.

Runs the same components as :class:`~repro.system.simulator.TestbedSimulator`
(machine, TPC-W pool, app server, FMC), but closes the control loop: every
FMC datapoint feeds a streaming aggregator, and each completed window is
handed to the policy. A policy trigger performs a *planned* restart
(short downtime); a failure-condition trigger performs a *crash* restart
(long downtime — state recovery, fsck, cache warm-up). The controller
accounts wall-clock uptime and downtime over a fixed horizon so that
policies can be compared by availability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.aggregation import OnlineAggregator
from repro.obs import get_logger, get_metrics, kv, span
from repro.rejuvenation.policy import RejuvenationPolicy

_log = get_logger("rejuvenation.controller")
from repro.system.anomalies import AnomalyProfile
from repro.system.failure import FailureCondition, MemoryExhaustion, SystemView
from repro.system.monitor import FeatureMonitorClient
from repro.system.resources import MachineState
from repro.system.server import AppServer
from repro.system.simulator import CampaignConfig
from repro.system.tpcw import EmulatedBrowserPool
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class ManagedSystemConfig:
    """Horizon and downtime accounting for a managed simulation."""

    #: Total simulated wall-clock horizon (seconds).
    horizon_seconds: float = 20_000.0
    #: Downtime of a planned (rejuvenation) restart.
    rejuvenation_downtime: float = 30.0
    #: Downtime of an unplanned crash (recovery, fsck, warm-up).
    crash_downtime: float = 300.0
    #: Aggregation window for the online feature stream.
    window_seconds: float = 20.0
    #: Monitor-dropout tolerance: when no aggregation window has
    #: completed for this long (monitor wedged, every sample dropped by
    #: the sanitizer, ...), the controller *holds the last completed
    #: window* and keeps consulting the policy with it — degraded but
    #: alive — instead of going blind. ``None`` resolves to 5 windows.
    staleness_timeout: "float | None" = None

    def __post_init__(self) -> None:
        if self.horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")
        if self.rejuvenation_downtime < 0 or self.crash_downtime < 0:
            raise ValueError("downtimes must be non-negative")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.staleness_timeout is not None and self.staleness_timeout <= 0:
            raise ValueError("staleness_timeout must be positive (or None)")

    @property
    def resolved_staleness_timeout(self) -> float:
        if self.staleness_timeout is not None:
            return self.staleness_timeout
        return 5.0 * self.window_seconds


@dataclass(frozen=True)
class Episode:
    """One uptime stretch, ended by a crash, a rejuvenation, or the horizon."""

    start: float
    end: float
    outcome: str  # "crash" | "rejuvenation" | "horizon"
    predicted_rttf: "float | None" = None  # at the trigger, if predictive

    @property
    def uptime(self) -> float:
        return self.end - self.start


@dataclass
class ManagedRunLog:
    """Everything a managed simulation produced."""

    policy_name: str
    episodes: list[Episode] = field(default_factory=list)
    total_uptime: float = 0.0
    total_downtime: float = 0.0

    @property
    def n_crashes(self) -> int:
        return sum(1 for e in self.episodes if e.outcome == "crash")

    @property
    def n_rejuvenations(self) -> int:
        return sum(1 for e in self.episodes if e.outcome == "rejuvenation")

    @property
    def availability(self) -> float:
        total = self.total_uptime + self.total_downtime
        return self.total_uptime / total if total > 0 else 1.0


class ManagedSystem:
    """The testbed under a rejuvenation policy, simulated over a horizon."""

    def __init__(
        self,
        campaign: CampaignConfig,
        managed: ManagedSystemConfig,
        policy: RejuvenationPolicy,
        failure_condition: FailureCondition | None = None,
        fault_profile=None,
        sanitize_config=None,
    ) -> None:
        self.campaign = campaign
        self.managed = managed
        self.policy = policy
        self.failure_condition = failure_condition or MemoryExhaustion()
        #: Optional :class:`repro.faults.FaultProfile` corrupting the
        #: monitor stream *before* the sanitize layer sees it — the
        #: robustness harness for the control loop.
        self.fault_profile = fault_profile
        #: Optional :class:`repro.core.sanitize.SanitizeConfig` for the
        #: stream sanitizer guarding the aggregator.
        self.sanitize_config = sanitize_config

    def run(self, seed: "int | None | np.random.Generator" = None) -> ManagedRunLog:
        """Simulate the managed system for the configured horizon."""
        cfg = self.campaign
        mcfg = self.managed
        rng = as_rng(seed if seed is not None else cfg.seed)
        log = ManagedRunLog(policy_name=self.policy.name)
        # Repair mode: the live loop tolerates bounded reordering instead
        # of crashing the controller; on a clean in-order stream it is
        # byte-for-byte identical to strict mode.
        aggregator = OnlineAggregator(mcfg.window_seconds, policy="repair")
        metrics = get_metrics()
        # Entered manually so the long episode loop below keeps its
        # indentation; the finally block guarantees the span closes.
        run_span = span(
            "rejuvenation.run",
            policy=self.policy.name,
            horizon_s=mcfg.horizon_seconds,
        ).__enter__()
        try:
            return self._run_episodes(cfg, mcfg, rng, log, aggregator, metrics)
        finally:
            run_span.set(
                episodes=len(log.episodes),
                crashes=log.n_crashes,
                rejuvenations=log.n_rejuvenations,
                availability=log.availability,
            ).__exit__()

    def _run_episodes(self, cfg, mcfg, rng, log, aggregator, metrics) -> ManagedRunLog:
        """Episode loop of :meth:`run` (split out for span bookkeeping)."""
        from repro.core.sanitize import StreamSanitizer
        from repro.obs import get_telemetry
        from repro.obs.profile import get_profiler

        wall = 0.0  # global wall clock (uptime + downtime)
        sanitizer = StreamSanitizer(self.sanitize_config)
        staleness = mcfg.resolved_staleness_timeout
        bus = get_telemetry()
        profiler = get_profiler()
        while wall < mcfg.horizon_seconds:
            # -- boot a fresh episode ---------------------------------------
            r_profile, r_pool, r_server, r_monitor = rng.spawn(4)
            # The corruptor RNG is spawned *only* when a fault profile is
            # installed, so clean runs consume the exact same seed
            # sequence as before this harness existed (bit-identical).
            corruptor = (
                self.fault_profile.stream(
                    rng.spawn(1)[0], horizon=mcfg.horizon_seconds
                )
                if self.fault_profile is not None
                else None
            )
            profile = AnomalyProfile.draw(
                r_profile,
                p_leak_range=cfg.p_leak_range,
                leak_kb_range=cfg.leak_kb_range,
                p_thread_range=cfg.p_thread_range,
            )
            state = MachineState(cfg.machine)
            pool = EmulatedBrowserPool(cfg.n_browsers, cfg.mix, seed=r_pool)
            server = AppServer(cfg.server, state, pool, profile, seed=r_server)
            fmc = FeatureMonitorClient(cfg.monitor, seed=r_monitor)
            fmc.reset(0.0)
            aggregator.reset()
            sanitizer.reset()
            self.policy.reset()

            episode_start = wall
            now = 0.0  # episode-local clock (what the features see)
            ewma_rt = 0.0
            outcome = "horizon"
            predicted: float | None = None
            # Hold-last-prediction state: the last completed window, when
            # it completed, and the earliest time a held (stale)
            # re-evaluation may run again.
            last_window: np.ndarray | None = None
            last_window_time = 0.0
            next_held_eval = 0.0
            # Predictions made this episode, kept so the true RTTF can be
            # emitted retrospectively once the episode's end is known:
            # (global time, episode age, predicted RTTF).
            pending_predictions: list[tuple[float, float, float]] = []

            while wall + now < mcfg.horizon_seconds:
                # The load schedule follows global wall time, not episode
                # time: a restart does not reset the time of day.
                fraction = cfg.load_schedule.active_fraction(wall + now)
                stats = server.tick(now, cfg.dt, fraction)
                now += cfg.dt
                if stats.n_completed > 0:
                    ewma_rt += 0.2 * (stats.mean_response_time - ewma_rt)

                if fmc.due(now):
                    t_abs = wall + now  # global telemetry timestamp
                    queue_delay = server.backlog_cpu_s / cfg.machine.n_cpus
                    dp = fmc.sample(now, state, stats.utilization, queue_delay)
                    bus.emit("controller.ewma_rt", t_abs, ewma_rt)
                    bus.emit("controller.utilization", t_abs, stats.utilization)
                    raw_rows = (
                        corruptor.feed(dp.to_array())
                        if corruptor is not None
                        else [dp.to_array()]
                    )
                    window: np.ndarray | None = None
                    for raw in raw_rows:
                        decision = sanitizer.process(raw)
                        if decision.row is None:
                            continue
                        completed = aggregator.add(decision.row)
                        if completed is not None:
                            window = completed
                    # Emitted on *every* monitor sample, not only when a
                    # window completes: when the sanitizer is dropping
                    # everything, no window ever completes — exactly when
                    # the drop counter must not flat-line on the dashboard.
                    bus.emit(
                        "sanitize.dropped_total",
                        t_abs,
                        float(sanitizer.dropped_total),
                    )
                    if window is not None:
                        last_window = window
                        last_window_time = now
                        with profiler.stage("controller.predict"):
                            trigger = self.policy.should_rejuvenate(
                                window, run_age=now
                            )
                        last_pred = getattr(self.policy, "last_prediction", None)
                        if last_pred is not None:
                            bus.emit("controller.predicted_rttf", t_abs, last_pred)
                            pending_predictions.append((t_abs, now, last_pred))
                        if trigger:
                            outcome = "rejuvenation"
                            predicted = last_pred
                            break
                    elif (
                        last_window is not None
                        and now - last_window_time > staleness
                        and now >= next_held_eval
                    ):
                        # Monitor dropout: no window has completed within
                        # the staleness timeout. Hold the last completed
                        # window and keep consulting the policy with it —
                        # degraded but alive — at most once per window
                        # interval, instead of going blind (or crashing).
                        next_held_eval = now + mcfg.window_seconds
                        metrics.inc("sanitize.stale_policy_holds_total")
                        bus.event(
                            t_abs,
                            "stale_hold",
                            policy=self.policy.name,
                            stale_for_s=now - last_window_time,
                        )
                        bus.emit(
                            "controller.stale_holds",
                            t_abs,
                            metrics.counter(
                                "sanitize.stale_policy_holds_total"
                            ).value,
                        )
                        _log.warning(
                            "monitor stream stale; holding last window %s",
                            kv(
                                policy=self.policy.name,
                                stale_for_s=now - last_window_time,
                            ),
                        )
                        with profiler.stage("controller.predict"):
                            trigger = self.policy.should_rejuvenate(
                                last_window, run_age=now
                            )
                        # A held consult is still a prediction: record it
                        # exactly like the normal path, so the truth series
                        # (controller.actual_rttf / rttf_error) covers the
                        # stretches where the controller flew on held data —
                        # the stretches whose accuracy matters most.
                        last_pred = getattr(self.policy, "last_prediction", None)
                        if last_pred is not None:
                            bus.emit("controller.predicted_rttf", t_abs, last_pred)
                            pending_predictions.append((t_abs, now, last_pred))
                        if trigger:
                            outcome = "rejuvenation"
                            predicted = last_pred
                            break

                # Time-based triggers cannot depend on the monitor stream:
                # they are evaluated every tick, so a wedged monitor (or a
                # first-window dropout, which also disables the stale-hold
                # path above) cannot starve a purely time-based policy.
                if self.policy.time_trigger(now):
                    outcome = "rejuvenation"
                    predicted = getattr(self.policy, "last_prediction", None)
                    break

                view = SystemView(
                    state=state,
                    mean_response_time=ewma_rt,
                    last_generation_interval=fmc.last_interval,
                )
                if self.failure_condition.is_failed(view):
                    outcome = "crash"
                    break

            uptime = min(now, mcfg.horizon_seconds - wall)
            log.total_uptime += uptime
            wall += uptime
            log.episodes.append(
                Episode(
                    start=episode_start,
                    end=episode_start + uptime,
                    outcome=outcome,
                    predicted_rttf=predicted,
                )
            )
            if outcome == "crash":
                # The episode's end is now known: emit the true RTTF for
                # every prediction made during it, timestamped where the
                # prediction was made, so predicted-vs-truth trajectories
                # line up on the dashboard's time axis.
                for t_pred, age, pred in pending_predictions:
                    truth = now - age
                    bus.emit("controller.actual_rttf", t_pred, truth)
                    bus.emit("controller.rttf_error", t_pred, pred - truth)
            bus.event(
                episode_start + uptime,
                outcome,
                policy=self.policy.name,
                uptime_s=uptime,
                predicted_rttf=predicted,
            )
            bus.emit("controller.episode_uptime", episode_start + uptime, uptime)
            metrics.inc(f"rejuvenation.episodes_total.{outcome}")
            metrics.observe("rejuvenation.episode_uptime_seconds", uptime)
            _log.info(
                "episode complete %s",
                kv(
                    policy=self.policy.name,
                    outcome=outcome,
                    uptime_s=uptime,
                    predicted_rttf=-1.0 if predicted is None else predicted,
                ),
            )

            if outcome == "horizon":
                break
            downtime = (
                mcfg.rejuvenation_downtime
                if outcome == "rejuvenation"
                else mcfg.crash_downtime
            )
            downtime = min(downtime, mcfg.horizon_seconds - wall)
            log.total_downtime += downtime
            wall += downtime

        return log
