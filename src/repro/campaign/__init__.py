"""``repro.campaign`` — declarative campaign specs and run-missing execution.

The experimental surface of the paper is a grid (anomaly mixes x
monitoring windows x model families x seeds). This package makes that
grid a first-class, declarative object:

:mod:`repro.campaign.spec`
    :class:`CampaignSpec` — the *content* of a campaign (param grid x
    seeds x staged analysis), canonically fingerprinted via
    :mod:`repro.store.keys`; enumerates to :class:`CampaignCell` s.
:mod:`repro.campaign.stages`
    The staged pipeline ``simulate → aggregate → train → evaluate`` as
    independently cached jobs (morf-style), each artifact keyed by its
    own fingerprint in the shared :class:`~repro.store.ArtifactStore`.
:mod:`repro.campaign.manager`
    :class:`CampaignManager` — diffs a spec against the store
    (:meth:`~CampaignManager.plan`), executes only the missing frontier
    (:meth:`~CampaignManager.run`), sharded within a driver by
    ``repro.parallel`` workers and across drivers by per-entry ``flock``
    — preserving the bit-identical-for-any-worker-count guarantee and
    checkpointed resume.

CLI: ``f2pm campaign {plan,run,status}``. See ``docs/CAMPAIGNS.md``.
"""

from repro.campaign.manager import (
    CampaignError,
    CampaignManager,
    CampaignPlan,
    CampaignResult,
    CellOutcome,
    CellPlan,
    StagePlan,
    plan_cells,
)
from repro.campaign.spec import (
    STAGES,
    CampaignCell,
    CampaignSpec,
    merged_cells,
)
from repro.campaign.stages import (
    campaign_fingerprint,
    history_name,
    run_stage,
    simulate_cell,
    stage_artifact,
)

__all__ = [
    "CampaignCell",
    "CampaignError",
    "CampaignManager",
    "CampaignPlan",
    "CampaignResult",
    "CellOutcome",
    "CellPlan",
    "STAGES",
    "CampaignSpec",
    "StagePlan",
    "campaign_fingerprint",
    "history_name",
    "merged_cells",
    "plan_cells",
    "run_stage",
    "simulate_cell",
    "stage_artifact",
]
