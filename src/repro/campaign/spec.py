"""Declarative campaign specifications (``repro.campaign.spec``).

A :class:`CampaignSpec` names the *content* of an experimental campaign
— a parameter grid over :class:`~repro.system.simulator.CampaignConfig`
fields, crossed with campaign seeds, plus the analysis parameters of the
staged pipeline (aggregation window, sanitize policy, model grid) — and
nothing about *how* it executes. Execution strategy (worker counts,
substrate, which driver process runs which cell) never appears in a
fingerprint, so artifacts cache-hit across all of them.

The spec enumerates its grid as :class:`CampaignCell` objects, one per
(grid point x seed). Each cell resolves to a concrete ``CampaignConfig``
whose canonical fingerprint (:mod:`repro.store.keys`) keys the cell's
artifacts — the *same* ``fingerprint("campaign", config)`` scheme the
experiment drivers have always used, so a store populated by
``default_history`` counts as cached for a spec covering that config.

Specs serialize to/from plain JSON (``from_dict``/``to_dict``) so they
can live in files and be handed to ``f2pm campaign {plan,run,status}``.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.store.keys import fingerprint, short_fingerprint
from repro.system.monitor import MonitorConfig
from repro.system.resources import MACHINE_PROFILES, MachineConfig
from repro.system.schedule import (
    ConstantLoad,
    DiurnalLoad,
    FlashCrowdLoad,
    LoadSchedule,
    StepLoad,
)
from repro.system.server import ServerConfig
from repro.system.simulator import CampaignConfig
from repro.system.tpcw import MIXES

#: JSON vocabulary for schedule values: ``{"type": <name>, ...fields}``.
_SCHEDULE_TYPES = {
    "constant": ConstantLoad,
    "diurnal": DiurnalLoad,
    "step": StepLoad,
    "flash-crowd": FlashCrowdLoad,
}

#: Stages a spec may request, in execution order (each caches its own
#: artifact; later stages consume earlier ones — morf-style staging).
STAGES = ("simulate", "aggregate", "train", "evaluate")

#: CampaignConfig fields a spec may not grid over: seeds have their own
#: axis (``seeds``), and the substrate is execution strategy, not content.
_RESERVED_AXES = frozenset({"seed", "substrate"})

#: Axes that are spec vocabulary rather than ``CampaignConfig`` fields.
#: ``scenario`` values are catalog names (:mod:`repro.scenarios`)
#: resolved to config overrides at cell-enumeration time; the resolved
#: config is fingerprinted exactly like any hand-written one, so the
#: axis adds no new cache-key vocabulary and old caches stay valid.
_VIRTUAL_AXES = frozenset({"scenario"})

_CONFIG_FIELDS = {f.name: f for f in dataclasses.fields(CampaignConfig)}


def _coerce_value(field_name: str, value: Any) -> Any:
    """Resolve a spec-level value to a ``CampaignConfig`` field value.

    JSON-friendly spellings are accepted: mixes and machine profiles by
    name (``"shopping"``, ``"small-vm"``), scenarios by catalog name,
    range pairs as lists. Everything else passes through and is
    validated by ``CampaignConfig.__post_init__`` / the fingerprint
    encoder.
    """
    if field_name == "scenario":
        from repro.scenarios import get_scenario

        return get_scenario(value).name
    if field_name == "mix" and isinstance(value, str):
        try:
            return MIXES[value]
        except KeyError:
            raise ValueError(
                f"unknown TPC-W mix {value!r}; known: {sorted(MIXES)}"
            ) from None
    if field_name == "machine" and isinstance(value, str):
        try:
            return MACHINE_PROFILES[value]
        except KeyError:
            raise ValueError(
                f"unknown machine profile {value!r}; "
                f"known: {sorted(MACHINE_PROFILES)}"
            ) from None
    if field_name == "machine" and isinstance(value, Mapping):
        return MachineConfig(**value)
    if field_name == "server" and isinstance(value, Mapping):
        return ServerConfig(**value)
    if field_name == "monitor" and isinstance(value, Mapping):
        return MonitorConfig(**value)
    if field_name == "load_schedule" and isinstance(value, Mapping):
        doc = dict(value)
        type_name = doc.pop("type", None)
        if type_name not in _SCHEDULE_TYPES:
            raise ValueError(
                f"unknown load schedule type {type_name!r}; "
                f"known: {sorted(_SCHEDULE_TYPES)}"
            )
        doc = {
            k: tuple(v) if isinstance(v, list) else v for k, v in doc.items()
        }
        return _SCHEDULE_TYPES[type_name](**doc)
    if isinstance(value, list):
        return tuple(value)
    return value


def _uncoerce_value(field_name: str, value: Any) -> Any:
    """Inverse of :func:`_coerce_value` for JSON export."""
    if field_name == "mix" and hasattr(value, "name") and value.name in MIXES:
        return value.name
    if field_name == "machine" and isinstance(value, MachineConfig):
        for profile_name, profile in MACHINE_PROFILES.items():
            if value == profile:
                return profile_name
    if field_name == "load_schedule" and isinstance(value, LoadSchedule):
        for type_name, cls in _SCHEDULE_TYPES.items():
            if type(value) is cls:
                doc = dataclasses.asdict(value)
                return {
                    "type": type_name,
                    **{
                        k: list(v) if isinstance(v, tuple) else v
                        for k, v in doc.items()
                    },
                }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, tuple):
        return list(value)
    return value


@dataclass(frozen=True)
class CampaignCell:
    """One grid point of a spec: a fully resolved campaign.

    ``params`` keeps the *declared* axis values (e.g. the mix name, not
    the mix object) for labelling; ``config`` is the resolved
    :class:`CampaignConfig` whose fingerprint keys the cell's artifacts.
    """

    index: int
    seed: int
    params: tuple[tuple[str, Any], ...]
    config: CampaignConfig

    @property
    def fingerprint(self) -> str:
        """Full canonical fingerprint of the resolved campaign config."""
        return fingerprint("campaign", self.config)

    def label(self) -> str:
        """Human-readable cell identity, e.g. ``mix=shopping seed=7``."""
        parts = [f"{k}={v}" for k, v in self.params]
        parts.append(f"seed={self.seed}")
        return " ".join(parts)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative campaign: grid x seeds x staged analysis.

    Parameters
    ----------
    name : human label; excluded from the fingerprint (two specs naming
        the same grid alias the same artifacts, which is the point).
    base : the template config every cell starts from.
    axes : ``{field: (values, ...)}`` grid over ``CampaignConfig``
        fields (normalized to name-sorted pairs for a stable encoding).
    seeds : campaign seeds; empty means "the base config's seed".
    stages : which pipeline stages the campaign runs (prefix of
        :data:`STAGES` order is not required, but execution sorts them).
    window_seconds / sanitize : aggregation-stage parameters.
    models / train_seed : train/evaluate-stage parameters.
    substrate : execution engine override for every cell (``None`` keeps
        the base's); excluded from fingerprints like
        ``CampaignConfig.substrate`` itself.
    """

    name: str = "campaign"
    base: CampaignConfig = field(default_factory=CampaignConfig)
    axes: tuple[tuple[str, tuple], ...] = ()
    seeds: tuple[int, ...] = ()
    stages: tuple[str, ...] = ("simulate",)
    window_seconds: float = 30.0
    sanitize: "str | None" = None
    models: tuple[str, ...] = ("linear", "m5p", "reptree")
    train_seed: int = 0

    substrate: "str | None" = None

    #: ``name`` is a label, ``substrate`` execution strategy: neither is
    #: campaign *content*, so the spec fingerprint skips both.
    __key_exclude__ = frozenset({"name", "substrate"})

    def __post_init__(self) -> None:
        axes = self.axes
        if isinstance(axes, Mapping):
            axes = tuple(axes.items())
        normalized = []
        for axis_name, values in sorted(axes, key=lambda kv: kv[0]):
            if axis_name not in _CONFIG_FIELDS and axis_name not in _VIRTUAL_AXES:
                raise ValueError(
                    f"unknown campaign axis {axis_name!r}; "
                    f"CampaignConfig has no such field and it is not a "
                    f"virtual axis ({sorted(_VIRTUAL_AXES)})"
                )
            if axis_name in _RESERVED_AXES:
                raise ValueError(
                    f"axis {axis_name!r} is reserved: use `seeds` for seeds; "
                    "the substrate is execution strategy, not a grid axis"
                )
            values = tuple(values)
            if not values:
                raise ValueError(f"axis {axis_name!r} has no values")
            normalized.append((axis_name, values))
        object.__setattr__(self, "axes", tuple(normalized))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        stages = tuple(self.stages)
        for stage in stages:
            if stage not in STAGES:
                raise ValueError(f"unknown stage {stage!r}; known: {STAGES}")
        if not stages:
            raise ValueError("a spec must request at least one stage")
        # Execution order is pipeline order regardless of declaration order.
        object.__setattr__(
            self, "stages", tuple(s for s in STAGES if s in stages)
        )
        object.__setattr__(self, "models", tuple(self.models))

    # -- identity -------------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Full canonical fingerprint of the spec's content."""
        return fingerprint("campaign-spec", self)

    @property
    def short_fingerprint(self) -> str:
        return short_fingerprint("campaign-spec", self)

    # -- enumeration ----------------------------------------------------------

    def cells(self) -> tuple[CampaignCell, ...]:
        """Enumerate the grid deterministically.

        Order: axis-value combinations in declared (name-sorted) axis
        order, seeds innermost — stable across processes, so two
        cooperating drivers walk the same frontier.
        """
        seeds = self.seeds or (self.base.seed,)
        axis_names = [name for name, _ in self.axes]
        axis_values = [values for _, values in self.axes]
        cells: list[CampaignCell] = []
        index = 0
        for combo in itertools.product(*axis_values) if axis_values else [()]:
            overrides = {
                name: _coerce_value(name, value)
                for name, value in zip(axis_names, combo)
            }
            # A scenario resolves to base-config overrides *first*, so
            # explicit axes on the same fields win over the preset.
            scenario_name = overrides.pop("scenario", None)
            if scenario_name is not None:
                from repro.scenarios import resolve_scenario

                cell_base = resolve_scenario(scenario_name, self.base)
            else:
                cell_base = self.base
            if self.substrate is not None:
                overrides["substrate"] = self.substrate
            for seed in seeds:
                config = replace(cell_base, seed=int(seed), **overrides)
                cells.append(
                    CampaignCell(
                        index=index,
                        seed=int(seed),
                        params=tuple(zip(axis_names, combo)),
                        config=config,
                    )
                )
                index += 1
        return tuple(cells)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly form; non-default ``base`` fields only."""
        default = CampaignConfig()
        base: dict[str, Any] = {}
        for f in dataclasses.fields(CampaignConfig):
            current = getattr(self.base, f.name)
            if current != getattr(default, f.name):
                base[f.name] = _uncoerce_value(f.name, current)
        doc: dict[str, Any] = {"name": self.name, "base": base}
        if self.axes:
            doc["axes"] = {
                name: [_uncoerce_value(name, v) for v in values]
                for name, values in self.axes
            }
        if self.seeds:
            doc["seeds"] = list(self.seeds)
        doc["stages"] = list(self.stages)
        doc["window_seconds"] = self.window_seconds
        if self.sanitize is not None:
            doc["sanitize"] = self.sanitize
        doc["models"] = list(self.models)
        doc["train_seed"] = self.train_seed
        if self.substrate is not None:
            doc["substrate"] = self.substrate
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping) -> "CampaignSpec":
        """Build a spec from :meth:`to_dict` output (or a hand-written
        JSON document of the same shape)."""
        if not isinstance(doc, Mapping):
            raise ValueError(f"spec document must be a mapping, got {type(doc).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        base_doc = doc.get("base", {})
        if not isinstance(base_doc, Mapping):
            raise ValueError("spec `base` must be a mapping of CampaignConfig fields")
        overrides = {}
        for field_name, value in base_doc.items():
            if field_name not in _CONFIG_FIELDS:
                raise ValueError(f"unknown CampaignConfig field {field_name!r} in base")
            overrides[field_name] = _coerce_value(field_name, value)
        base = replace(CampaignConfig(), **overrides) if overrides else CampaignConfig()
        axes = doc.get("axes", ())
        if isinstance(axes, Mapping):
            axes = tuple((k, tuple(v)) for k, v in axes.items())
        kwargs: dict[str, Any] = {
            "name": doc.get("name", "campaign"),
            "base": base,
            "axes": axes,
            "seeds": tuple(doc.get("seeds", ())),
            "stages": tuple(doc.get("stages", ("simulate",))),
            "window_seconds": float(doc.get("window_seconds", 30.0)),
            "sanitize": doc.get("sanitize"),
            "models": tuple(doc.get("models", ("linear", "m5p", "reptree"))),
            "train_seed": int(doc.get("train_seed", 0)),
            "substrate": doc.get("substrate"),
        }
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json_file(cls, path: "str | Path") -> "CampaignSpec":
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise ValueError(f"could not read spec {path}: {exc}") from exc
        return cls.from_dict(doc)

    # -- set algebra over artifacts -------------------------------------------

    def artifact_fingerprints(self) -> frozenset[str]:
        """Full fingerprints of every artifact this spec can own, across
        all of its stages — the scope key for ``f2pm cache gc --spec``."""
        from repro.campaign.stages import stage_artifact

        fps = set()
        for cell in self.cells():
            for stage in self.stages:
                _, fp = stage_artifact(self, cell, stage)
                fps.add(fp)
        return frozenset(fps)


def merged_cells(specs: Iterable[CampaignSpec]) -> tuple[CampaignCell, ...]:
    """The union of several specs' grids, deduplicated by config
    fingerprint (first occurrence wins), reindexed deterministically."""
    seen: set[str] = set()
    merged: list[CampaignCell] = []
    for spec in specs:
        for cell in spec.cells():
            fp = cell.fingerprint
            if fp in seen:
                continue
            seen.add(fp)
            merged.append(
                CampaignCell(
                    index=len(merged),
                    seed=cell.seed,
                    params=cell.params,
                    config=cell.config,
                )
            )
    return tuple(merged)
