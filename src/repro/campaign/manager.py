"""Campaign planning and execution (``repro.campaign.manager``).

The ns-3 sem idiom: a campaign is a *database* of desired results (here,
the content-addressed artifact store keyed by canonical fingerprints),
and running a campaign means diffing the declarative spec against that
database and executing only the missing cells — ``run_missing``.

:func:`plan_cells` computes the diff without executing anything;
:class:`CampaignManager` executes the frontier, sharded two ways at
once:

* *within* a driver, each cell's simulation fans out over
  ``repro.parallel`` workers (``jobs=N``) under the bit-identical-for-
  any-worker-count guarantee;
* *across* drivers, cooperating processes sharing one store partition
  the frontier dynamically through per-entry ``flock``: a driver probes
  each missing cell's lock non-blockingly (:class:`~repro.store.EntryBusy`),
  defers cells another driver is already producing, and circles back to
  load them once published. No coordinator, no partition scheme — the
  lock *is* the work queue.

Every cell executes its stage prefix under ``campaign.cell`` /
``campaign.stage.<stage>`` spans; the run increments
``campaign.cells_cached`` / ``campaign.cells_run`` /
``campaign.cells_failed``. A failing cell does not abort the campaign —
the remaining frontier still executes, then :class:`CampaignError`
reports every failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs import get_logger, get_metrics, kv, span
from repro.store import ArtifactStore, EntryBusy
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.stages import (
    DEFAULT_CHECKPOINT_EVERY,
    run_stage,
    stage_artifact,
)

_log = get_logger("campaign.manager")


class CampaignError(RuntimeError):
    """One or more cells failed; the rest of the campaign still ran."""

    def __init__(self, failures: "tuple[tuple[CampaignCell, str], ...]") -> None:
        self.failures = failures
        lines = ", ".join(f"[{c.label()}]: {err}" for c, err in failures)
        super().__init__(f"{len(failures)} campaign cell(s) failed: {lines}")


@dataclass(frozen=True)
class StagePlan:
    """Plan line for one (cell, stage): its artifact and cache state."""

    stage: str
    artifact: str
    fingerprint: str
    cached: bool


@dataclass(frozen=True)
class CellPlan:
    """Diff result for one cell: which stages the store already holds."""

    cell: CampaignCell
    stages: tuple[StagePlan, ...]

    @property
    def cached(self) -> bool:
        """Fully satisfied — running this cell would execute nothing."""
        return all(s.cached for s in self.stages)

    @property
    def missing_stages(self) -> tuple[str, ...]:
        return tuple(s.stage for s in self.stages if not s.cached)


@dataclass(frozen=True)
class CampaignPlan:
    """The spec-vs-store diff: the missing-cell frontier, unexecuted."""

    spec_name: str
    spec_fingerprint: str
    cells: tuple[CellPlan, ...]

    @property
    def cached_cells(self) -> tuple[CellPlan, ...]:
        return tuple(c for c in self.cells if c.cached)

    @property
    def missing_cells(self) -> tuple[CellPlan, ...]:
        return tuple(c for c in self.cells if not c.cached)

    def summary(self) -> str:
        """Human-readable diff table plus greppable totals."""
        lines = [
            f"campaign {self.spec_name} "
            f"(spec fingerprint {self.spec_fingerprint[:16]})",
        ]
        for plan in self.cells:
            state = (
                "cached"
                if plan.cached
                else "missing " + ",".join(plan.missing_stages)
            )
            lines.append(f"  [{plan.cell.index:3d}] {plan.cell.label():40s} {state}")
        lines.append(
            f"total={len(self.cells)} cached={len(self.cached_cells)} "
            f"missing={len(self.missing_cells)}"
        )
        return "\n".join(lines)


@dataclass
class CellOutcome:
    """What executing one cell yielded."""

    cell: CampaignCell
    results: dict[str, Any] = field(default_factory=dict)
    produced_stages: tuple[str, ...] = ()
    error: "str | None" = None

    @property
    def cached(self) -> bool:
        return self.error is None and not self.produced_stages


@dataclass
class CampaignResult:
    """Everything a :meth:`CampaignManager.run` pass yielded."""

    plan: CampaignPlan
    outcomes: tuple[CellOutcome, ...]

    @property
    def cells_cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def cells_run(self) -> int:
        return sum(1 for o in self.outcomes if o.error is None and not o.cached)

    @property
    def cells_failed(self) -> int:
        return sum(1 for o in self.outcomes if o.error is not None)

    def outcome(self, index: int) -> CellOutcome:
        for o in self.outcomes:
            if o.cell.index == index:
                return o
        raise KeyError(f"no outcome for cell {index}")


def plan_cells(
    spec: CampaignSpec,
    cells: "tuple[CampaignCell, ...]",
    store: "ArtifactStore | None",
) -> CampaignPlan:
    """Diff *cells* (usually ``spec.cells()``) against the store.

    Pure read: verifies each stage artifact's presence (checksummed — a
    corrupt entry counts as missing) and executes nothing. With no store
    every stage is missing.
    """
    plans = []
    for cell in cells:
        stage_plans = []
        for stage in spec.stages:
            name, fp = stage_artifact(spec, cell, stage)
            cached = store.contains(name) if store is not None else False
            stage_plans.append(
                StagePlan(stage=stage, artifact=name, fingerprint=fp, cached=cached)
            )
        plans.append(CellPlan(cell=cell, stages=tuple(stage_plans)))
    return CampaignPlan(
        spec_name=spec.name,
        spec_fingerprint=spec.fingerprint,
        cells=tuple(plans),
    )


class CampaignManager:
    """Diff-and-execute driver for one :class:`CampaignSpec`.

    Parameters
    ----------
    spec : the declarative campaign.
    store : artifact store to diff against and publish into. ``None``
        disables persistence entirely — every cell executes in memory
        (scratch sweeps, unit tests).
    """

    def __init__(
        self, spec: CampaignSpec, store: "ArtifactStore | None" = None
    ) -> None:
        self.spec = spec
        self.store = store

    # -- read-only ------------------------------------------------------------

    def plan(self) -> CampaignPlan:
        """The current spec-vs-store diff (idempotent, executes nothing)."""
        return plan_cells(self.spec, self.spec.cells(), self.store)

    def status(self) -> dict:
        """JSON-friendly snapshot of the plan (for ``f2pm campaign status``)."""
        plan = self.plan()
        return {
            "schema": "f2pm.campaign-status/1",
            "name": self.spec.name,
            "spec_fingerprint": plan.spec_fingerprint,
            "stages": list(self.spec.stages),
            "cells_total": len(plan.cells),
            "cells_cached": len(plan.cached_cells),
            "cells_missing": len(plan.missing_cells),
            "cells": [
                {
                    "index": p.cell.index,
                    "label": p.cell.label(),
                    "fingerprint": p.cell.fingerprint,
                    "cached": p.cached,
                    "missing_stages": list(p.missing_stages),
                }
                for p in plan.cells
            ],
        }

    # -- execution -------------------------------------------------------------

    def run(
        self,
        *,
        jobs: int = 1,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        cooperate: bool = True,
    ) -> CampaignResult:
        """Execute the missing frontier; load everything else.

        ``cooperate=True`` (the default, meaningful only with a store)
        probes each missing cell non-blockingly first: cells another
        driver is producing are deferred to a second, blocking pass that
        typically just loads the by-then-published artifacts. Cached
        cells are never re-executed — their artifacts are loaded and
        counted under ``campaign.cells_cached``.
        """
        metrics = get_metrics()
        plan = self.plan()
        outcomes: dict[int, CellOutcome] = {}
        deferred: list[CampaignCell] = []
        probe = cooperate and self.store is not None

        with span(
            "campaign.run",
            campaign=self.spec.name,
            cells=len(plan.cells),
            missing=len(plan.missing_cells),
        ) as root:
            for cell_plan in plan.cells:
                cell = cell_plan.cell
                try:
                    outcomes[cell.index] = self._run_cell(
                        cell,
                        jobs=jobs,
                        checkpoint_every=checkpoint_every,
                        block=not probe,
                    )
                except EntryBusy:
                    _log.info(
                        "cell busy, deferring %s",
                        kv(cell=cell.index, label=cell.label()),
                    )
                    deferred.append(cell)
                except Exception as exc:
                    outcomes[cell.index] = CellOutcome(cell=cell, error=str(exc))
            for cell in deferred:  # blocking pass: usually plain loads
                try:
                    outcomes[cell.index] = self._run_cell(
                        cell,
                        jobs=jobs,
                        checkpoint_every=checkpoint_every,
                        block=True,
                    )
                except Exception as exc:
                    outcomes[cell.index] = CellOutcome(cell=cell, error=str(exc))
            ordered = tuple(outcomes[c.index] for c in (p.cell for p in plan.cells))
            result = CampaignResult(plan=plan, outcomes=ordered)
            metrics.inc("campaign.cells_cached", result.cells_cached)
            metrics.inc("campaign.cells_run", result.cells_run)
            metrics.inc("campaign.cells_failed", result.cells_failed)
            root.set(
                cached=result.cells_cached,
                run=result.cells_run,
                failed=result.cells_failed,
            )
        _log.info(
            "campaign complete %s",
            kv(
                name=self.spec.name,
                cached=result.cells_cached,
                run=result.cells_run,
                failed=result.cells_failed,
            ),
        )
        failures = tuple(
            (o.cell, o.error) for o in result.outcomes if o.error is not None
        )
        if failures:
            raise CampaignError(failures)
        return result

    def _run_cell(
        self,
        cell: CampaignCell,
        *,
        jobs: int,
        checkpoint_every: int,
        block: bool,
    ) -> CellOutcome:
        """Execute one cell's stage prefix (simulate → … → last stage).

        Raises :class:`~repro.store.EntryBusy` (``block=False`` only)
        *before* recording any outcome, so the caller can defer the
        whole cell and re-enter it later.
        """
        results: dict[str, Any] = {}
        produced_stages: list[str] = []
        with span("campaign.cell", index=cell.index, label=cell.label()):
            for stage in self.spec.stages:
                value, produced = run_stage(
                    self.spec,
                    cell,
                    stage,
                    self.store,
                    jobs=jobs,
                    checkpoint_every=checkpoint_every,
                    block=block,
                )
                results[stage] = value
                if produced:
                    produced_stages.append(stage)
        return CellOutcome(
            cell=cell,
            results=results,
            produced_stages=tuple(produced_stages),
        )
