"""Staged campaign jobs with per-stage artifact caching.

morf-style staging: the pipeline ``simulate -> aggregate -> train ->
evaluate`` is four composable jobs, each persisting its own artifact to
the content-addressed store under its own canonical fingerprint. A later
stage's cache hit never touches the earlier stages (re-evaluating a
cached model loads nothing but the report); a later stage's miss pulls
exactly the prefix it needs, each prefix stage itself a cache lookup.

Artifact naming (all under one :class:`~repro.store.ArtifactStore`):

==========  ======================  ===================================
stage       entry name              fingerprint kind
==========  ======================  ===================================
simulate    ``history_<fp16>.npz``  ``campaign`` (the config itself —
                                    identical to the scheme
                                    ``experiments.common`` has always
                                    used, so existing caches count)
aggregate   ``dataset_<fp16>.npz``  ``campaign-dataset``
train       ``model_<fp16>.bin``    ``campaign-model``
evaluate    ``report_<fp16>.json``  ``campaign-report``
==========  ======================  ===================================

Simulation is checkpointed (:class:`~repro.store.CampaignCheckpoint`)
every ``checkpoint_every`` runs, so a killed driver resumes the cell
bit-identically. Every stage accepts ``block=False`` to raise
:class:`~repro.store.EntryBusy` instead of waiting on another driver's
per-entry lock — the cooperation primitive the manager's multi-driver
sharding is built on.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

import numpy as np

from repro._version import __version__
from repro.core import AggregationConfig, F2PM, F2PMConfig, aggregate_history
from repro.core.dataset import TrainingSet
from repro.core.history import DataHistory
from repro.core.persistence import (
    FORMAT_VERSION,
    ModelEnvelope,
    load_model,
    save_model,
)
from repro.obs import get_logger, kv, span
from repro.store import ArtifactStore, CampaignCheckpoint
from repro.store.keys import SHORT_DIGEST_LEN, fingerprint
from repro.system.simulator import CampaignConfig, TestbedSimulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.spec import CampaignCell, CampaignSpec
    from repro.core.framework import F2PMResult
    from repro.core.persistence import ModelEnvelope

_log = get_logger("campaign.stages")

#: Cold-cache simulations checkpoint their completed prefix this often.
DEFAULT_CHECKPOINT_EVERY = 5


# -- artifact identity --------------------------------------------------------


def campaign_fingerprint(config: CampaignConfig) -> str:
    """Full canonical fingerprint of a campaign configuration."""
    return fingerprint("campaign", config)


def history_name(config: CampaignConfig) -> str:
    """Deterministic store entry name for a campaign's history."""
    return f"history_{campaign_fingerprint(config)[:SHORT_DIGEST_LEN]}"


def _analysis_value(spec: "CampaignSpec", cell: "CampaignCell") -> dict:
    """The content that keys the aggregate stage: campaign + window +
    sanitize policy (never execution strategy)."""
    return {
        "campaign": cell.config,
        "window_seconds": spec.window_seconds,
        "sanitize": spec.sanitize,
    }


def _model_value(spec: "CampaignSpec", cell: "CampaignCell") -> dict:
    return {
        **_analysis_value(spec, cell),
        "models": spec.models,
        "train_seed": spec.train_seed,
    }


def stage_artifact(
    spec: "CampaignSpec", cell: "CampaignCell", stage: str
) -> tuple[str, str]:
    """``(entry name, full fingerprint)`` of one cell's stage artifact."""
    if stage == "simulate":
        fp = cell.fingerprint
        return f"history_{fp[:SHORT_DIGEST_LEN]}.npz", fp
    if stage == "aggregate":
        fp = fingerprint("campaign-dataset", _analysis_value(spec, cell))
        return f"dataset_{fp[:SHORT_DIGEST_LEN]}.npz", fp
    if stage == "train":
        fp = fingerprint("campaign-model", _model_value(spec, cell))
        return f"model_{fp[:SHORT_DIGEST_LEN]}.bin", fp
    if stage == "evaluate":
        fp = fingerprint("campaign-report", _model_value(spec, cell))
        return f"report_{fp[:SHORT_DIGEST_LEN]}.json", fp
    raise ValueError(f"unknown stage {stage!r}")


# -- stage: simulate ----------------------------------------------------------


def simulate_cell(
    config: CampaignConfig,
    store: "ArtifactStore | None",
    *,
    jobs: int = 1,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    block: bool = True,
) -> tuple[DataHistory, bool]:
    """Produce-or-load one campaign history; returns ``(history, produced)``.

    With a store, the artifact publishes under the campaign fingerprint
    and a cold simulation checkpoints its completed prefix (killed
    drivers resume instead of restarting). ``store=None`` simulates
    unconditionally (no persistence — scratch campaigns).
    """
    if store is None:
        return TestbedSimulator(config).run_campaign(jobs=jobs), True
    name = history_name(config)
    full_fp = campaign_fingerprint(config)
    checkpoint = CampaignCheckpoint(
        store.path(f"{name}.ckpt.npz"), key=full_fp, total_runs=config.n_runs
    )

    def produce() -> DataHistory:
        return TestbedSimulator(config).run_campaign(
            jobs=jobs, checkpoint=checkpoint, checkpoint_every=checkpoint_every
        )

    return store.get_or_produce(
        f"{name}.npz",
        produce,
        save=lambda h, path: h.save(path),
        load=DataHistory.load,
        kind="history",
        fingerprint=full_fp,
        block=block,
    )


# -- stage: aggregate ---------------------------------------------------------


def _save_dataset(dataset: TrainingSet, path) -> None:
    with open(path, "wb") as fh:
        np.savez_compressed(
            fh,
            X=dataset.X,
            y=dataset.y,
            feature_names=np.array(dataset.feature_names),
            run_ids=dataset.run_ids,
        )


def _load_dataset(path) -> TrainingSet:
    with np.load(path, allow_pickle=False) as data:
        return TrainingSet(
            X=data["X"],
            y=data["y"],
            feature_names=tuple(str(n) for n in data["feature_names"]),
            run_ids=data["run_ids"],
        )


def aggregate_cell(
    spec: "CampaignSpec",
    cell: "CampaignCell",
    store: "ArtifactStore | None",
    *,
    jobs: int = 1,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    block: bool = True,
) -> tuple[TrainingSet, bool]:
    """Aggregate one cell's history into its training set (cached)."""

    def produce() -> TrainingSet:
        history, _ = simulate_cell(
            cell.config,
            store,
            jobs=jobs,
            checkpoint_every=checkpoint_every,
            block=block,
        )
        return aggregate_history(
            history,
            AggregationConfig(window_seconds=spec.window_seconds),
            sanitize=spec.sanitize,
        )

    if store is None:
        return produce(), True
    name, fp = stage_artifact(spec, cell, "aggregate")
    return store.get_or_produce(
        name,
        produce,
        save=_save_dataset,
        load=_load_dataset,
        kind="campaign-dataset",
        fingerprint=fp,
        block=block,
    )


# -- stages: train / evaluate -------------------------------------------------

#: One F2PM execution per (cell content, analysis params) per process:
#: the train and evaluate stages of one cell share it, exactly like the
#: experiment drivers share ``run_f2pm_cached``.
_F2PM_MEMO: dict[str, "F2PMResult"] = {}


def _f2pm_config(spec: "CampaignSpec") -> F2PMConfig:
    return F2PMConfig(
        aggregation=AggregationConfig(window_seconds=spec.window_seconds),
        sanitize=spec.sanitize,
        models=spec.models,
        lasso_predictor_lambdas=(),
        smae_threshold_frac=0.10,
        seed=spec.train_seed,
    )


def _run_f2pm(
    spec: "CampaignSpec",
    cell: "CampaignCell",
    store: "ArtifactStore | None",
    *,
    jobs: int = 1,
    block: bool = True,
) -> "F2PMResult":
    _, memo_key = stage_artifact(spec, cell, "train")
    if memo_key not in _F2PM_MEMO:
        history, _ = simulate_cell(cell.config, store, jobs=jobs, block=block)
        _F2PM_MEMO[memo_key] = F2PM(_f2pm_config(spec)).run(history, jobs=jobs)
    return _F2PM_MEMO[memo_key]


def train_cell(
    spec: "CampaignSpec",
    cell: "CampaignCell",
    store: "ArtifactStore | None",
    *,
    jobs: int = 1,
    block: bool = True,
) -> "tuple[ModelEnvelope, bool]":
    """Fit the cell's model grid; persist the best-by-S-MAE envelope."""

    def produce() -> ModelEnvelope:
        result = _run_f2pm(spec, cell, store, jobs=jobs, block=block)
        best = result.best_by_smae("all")
        return ModelEnvelope(
            model=result.models[(best.name, "all")],
            feature_names=tuple(result.dataset.feature_names),
            package_version=__version__,
            format_version=FORMAT_VERSION,
            metadata={
                "model": best.name,
                "s_mae": best.s_mae,
                "cell": cell.label(),
                "campaign_fingerprint": cell.fingerprint,
            },
        )

    if store is None:
        return produce(), True
    name, fp = stage_artifact(spec, cell, "train")
    return store.get_or_produce(
        name,
        produce,
        save=lambda env, path: save_model(
            env.model, path, feature_names=env.feature_names, metadata=env.metadata
        ),
        load=load_model,
        kind="campaign-model",
        fingerprint=fp,
        block=block,
    )


def evaluate_cell(
    spec: "CampaignSpec",
    cell: "CampaignCell",
    store: "ArtifactStore | None",
    *,
    jobs: int = 1,
    block: bool = True,
) -> tuple[dict, bool]:
    """Score the cell's model grid; persist the per-model report table."""

    def produce() -> dict:
        result = _run_f2pm(spec, cell, store, jobs=jobs, block=block)
        best = result.best_by_smae("all")
        return {
            "schema": "f2pm.campaign-report/1",
            "cell": cell.label(),
            "campaign_fingerprint": cell.fingerprint,
            "smae_threshold": result.smae_threshold,
            "best": {"model": best.name, "s_mae": best.s_mae},
            "reports": [
                {
                    "name": r.name,
                    "feature_set": r.feature_set,
                    "s_mae": r.s_mae,
                    "mae": r.mae,
                    "train_time": r.train_time,
                    "validation_time": r.validation_time,
                }
                for r in result.reports
            ],
        }

    if store is None:
        return produce(), True
    name, fp = stage_artifact(spec, cell, "evaluate")
    return store.get_or_produce(
        name,
        produce,
        save=lambda doc, path: path.write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        ),
        load=lambda path: json.loads(path.read_text()),
        kind="campaign-report",
        fingerprint=fp,
        block=block,
    )


# -- dispatch -----------------------------------------------------------------


def run_stage(
    spec: "CampaignSpec",
    cell: "CampaignCell",
    stage: str,
    store: "ArtifactStore | None",
    *,
    jobs: int = 1,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    block: bool = True,
) -> tuple[Any, bool]:
    """Execute one stage of one cell; returns ``(value, produced)``."""
    with span(f"campaign.stage.{stage}", cell=cell.index) as sp:
        if stage == "simulate":
            value, produced = simulate_cell(
                cell.config,
                store,
                jobs=jobs,
                checkpoint_every=checkpoint_every,
                block=block,
            )
        elif stage == "aggregate":
            value, produced = aggregate_cell(
                spec, cell, store, jobs=jobs,
                checkpoint_every=checkpoint_every, block=block,
            )
        elif stage == "train":
            value, produced = train_cell(spec, cell, store, jobs=jobs, block=block)
        elif stage == "evaluate":
            value, produced = evaluate_cell(spec, cell, store, jobs=jobs, block=block)
        else:
            raise ValueError(f"unknown stage {stage!r}")
        sp.set(produced=produced)
    _log.info(
        "stage %s %s",
        "produced" if produced else "loaded",
        kv(stage=stage, cell=cell.index, label=cell.label()),
    )
    return value, produced
