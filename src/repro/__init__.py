"""F2PM — Framework for building Failure Prediction Models.

Reproduction of *"A Machine Learning-based Framework for Building
Application Failure Prediction Models"* (Pellegrini, Di Sanzo, Avresky;
IPDPS Workshops 2015).

The package is organized in four layers:

``repro.ml``
    A from-scratch machine-learning substrate (numpy/scipy only) providing
    the six regression methods the paper evaluates — Linear Regression,
    Lasso, M5P, REP-Tree, epsilon-SVR and LS-SVM — plus metrics, model
    selection and preprocessing.

``repro.system``
    A simulated testbed substituting the paper's VMware/TPC-W deployment:
    a machine resource model, TPC-W workload generator, application-server
    model, anomaly injectors and the FMC/FMS monitoring pair.

``repro.core``
    F2PM itself: data history, datapoint aggregation with slope metrics,
    RTTF labelling, Lasso-based feature selection, model generation and
    validation, and the comparison reports.

``repro.experiments``
    One driver per table and figure of the paper's evaluation section.

Quickstart::

    from repro.system import TestbedSimulator, CampaignConfig
    from repro.core import F2PM, F2PMConfig

    history = TestbedSimulator(CampaignConfig(n_runs=8, seed=7)).run_campaign()
    f2pm = F2PM(F2PMConfig())
    result = f2pm.run(history)
    print(result.comparison_table())
"""

from repro._version import __version__

__all__ = ["__version__"]
