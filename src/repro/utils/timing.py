"""Wall-clock timing used for the paper's Training/Validation Time metrics.

Tables III and IV of the paper report the wall-clock cost of building and
validating each model. :class:`Timer` is a tiny context manager recording
elapsed seconds; since the observability layer landed it is a thin veneer
over a detached :class:`repro.obs.trace.Span`, so the repository has one
timing code path (``span`` for traced operations, ``Timer`` for bare
measurements — both share the same clock semantics).
"""

from __future__ import annotations

from repro.obs.trace import Span


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example::

        with Timer() as t:
            model.fit(X, y)
        print(t.elapsed)

    ``elapsed`` reads as the live duration while the block is running and
    freezes at exit, so a Timer can also be polled mid-flight. Re-entering
    the context restarts the clock: the previous measurement is discarded
    at ``__enter__`` and ``elapsed`` always refers to the most recent
    (possibly still running) interval.
    """

    __slots__ = ("_span",)

    def __init__(self) -> None:
        self._span = Span("timer")

    def __enter__(self) -> "Timer":
        self._span.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._span.finish()

    @property
    def running(self) -> bool:
        """True while inside the ``with`` block."""
        return self._span.running

    @property
    def elapsed(self) -> float:
        """Elapsed seconds (live while running, frozen after exit)."""
        return self._span.duration
