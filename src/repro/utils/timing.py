"""Wall-clock timing used for the paper's Training/Validation Time metrics.

Tables III and IV of the paper report the wall-clock cost of building and
validating each model. :class:`Timer` is a tiny context manager around
:func:`time.perf_counter` that records elapsed seconds.
"""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example::

        with Timer() as t:
            model.fit(X, y)
        print(t.elapsed)

    ``elapsed`` reads as the live duration while the block is running and
    freezes at exit, so a Timer can also be polled mid-flight.
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float | None = None

    def __enter__(self) -> "Timer":
        self._elapsed = None
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self._elapsed = time.perf_counter() - self._start

    @property
    def running(self) -> bool:
        """True while inside the ``with`` block."""
        return self._start is not None and self._elapsed is None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds (live while running, frozen after exit)."""
        if self._start is None:
            raise RuntimeError("Timer was never started")
        if self._elapsed is None:
            return time.perf_counter() - self._start
        return self._elapsed
