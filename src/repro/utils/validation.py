"""Input-validation helpers shared by all estimators.

These mirror the small subset of scikit-learn's ``check_array`` family the
estimators need: coercion to 2-D float64 arrays, finite-value checks, and
consistent-length checks between feature matrices and targets. Centralizing
them keeps the estimator ``fit`` methods small and the error messages
uniform.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def check_array(
    X: Any,
    *,
    ndim: int = 2,
    dtype: type = np.float64,
    allow_empty: bool = False,
    name: str = "X",
) -> np.ndarray:
    """Coerce *X* to a contiguous float array and validate it.

    Parameters
    ----------
    X : array-like
        Input data.
    ndim : int
        Required dimensionality (1 or 2). A 1-D input with ``ndim=2`` is
        rejected rather than silently reshaped — callers decide the shape.
    dtype : numpy dtype
        Target dtype (default float64).
    allow_empty : bool
        Whether zero-sample inputs are accepted.
    name : str
        Name used in error messages.
    """
    arr = np.ascontiguousarray(X, dtype=dtype)
    if arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-D, got shape {arr.shape}")
    if not allow_empty and arr.shape[0] == 0:
        raise ValueError(f"{name} has no samples")
    if np.issubdtype(arr.dtype, np.floating) and not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_consistent_length(*arrays: np.ndarray) -> None:
    """Raise if the first dimensions of the given arrays differ."""
    lengths = {a.shape[0] for a in arrays}
    if len(lengths) > 1:
        raise ValueError(f"inconsistent numbers of samples: {sorted(lengths)}")


def check_X_y(X: Any, y: Any, *, min_samples: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / target vector pair for regression."""
    X = check_array(X, ndim=2, name="X")
    y = check_array(y, ndim=1, name="y")
    check_consistent_length(X, y)
    if X.shape[0] < min_samples:
        raise ValueError(
            f"at least {min_samples} samples required, got {X.shape[0]}"
        )
    return X, y


def check_is_fitted(estimator: Any, attribute: str) -> None:
    """Raise ``RuntimeError`` if *estimator* lacks the fitted *attribute*."""
    if getattr(estimator, attribute, None) is None:
        raise RuntimeError(
            f"{type(estimator).__name__} is not fitted; call fit() first"
        )
