"""Plain-text table rendering for experiment reports.

The experiment drivers print tables shaped like the paper's Tables I–IV.
``render_table`` produces a fixed-width ASCII table; no third-party
dependency is used so reports render anywhere.
"""

from __future__ import annotations

from typing import Sequence


def _fmt_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = ".3f",
) -> str:
    """Render *rows* under *headers* as an aligned ASCII table.

    Floats are formatted with *float_fmt*; all other values via ``str``.
    Column widths adapt to content. Returns the table as a single string
    (no trailing newline).
    """
    str_rows = [[_fmt_cell(c, float_fmt) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"

    def line(cells: Sequence[str]) -> str:
        inner = " | ".join(c.ljust(w) for c, w in zip(cells, widths))
        return f"| {inner} |"

    out: list[str] = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(line(list(headers)))
    out.append(sep)
    for row in str_rows:
        out.append(line(row))
    out.append(sep)
    return "\n".join(out)
