"""Shared infrastructure: seeded RNG streams, timers, validation, tables."""

from repro.utils.rng import spawn_rng, as_rng
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_array,
    check_X_y,
    check_consistent_length,
    check_is_fitted,
)
from repro.utils.tables import render_table

__all__ = [
    "spawn_rng",
    "as_rng",
    "Timer",
    "check_array",
    "check_X_y",
    "check_consistent_length",
    "check_is_fitted",
    "render_table",
]
