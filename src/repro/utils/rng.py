"""Reproducible random-number-generator plumbing.

Every stochastic component in the package accepts either an integer seed,
``None`` (fresh OS entropy) or an existing :class:`numpy.random.Generator`.
``as_rng`` normalizes all three to a ``Generator``; ``spawn_rng`` derives
statistically independent child streams so that, e.g., the memory-leak
injector and the workload generator never share a stream (independent
draws are an explicit requirement of the paper's anomaly utilities,
Sec. III-E: "according to uncorrelated distribution functions").
"""

from __future__ import annotations

import numpy as np

RngLike = "int | None | np.random.Generator"


def as_rng(seed: "int | None | np.random.Generator") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Passing an existing generator returns it unchanged (shared stream);
    passing an int gives a deterministic fresh stream; ``None`` gives a
    nondeterministic one.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(parent: "int | None | np.random.Generator", n: int = 1) -> list[np.random.Generator]:
    """Derive *n* independent child generators from *parent*.

    Children are produced with :meth:`numpy.random.Generator.spawn`, which
    uses the SeedSequence spawning protocol, guaranteeing independence
    between siblings and from the parent's future output.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return as_rng(parent).spawn(n)
