"""Crash-safe campaign checkpoints: resume instead of restart.

A long monitoring campaign (tens of runs, possibly fanned out with
``--jobs``) used to be all-or-nothing: a killed driver restarted from
run 0. :class:`CampaignCheckpoint` persists the completed *prefix* of a
campaign every K runs — atomically, checksummed, tagged with the
producing config's fingerprint and the campaign's total run count — so
a restarted driver validates the checkpoint, reloads the prefix, and
simulates only the remaining runs.

Because every run's random stream is pre-spawned from the campaign seed
(independent of worker count *and* of where a resume happened), a
resumed campaign is bit-identical to an uninterrupted one; the test
battery enforces this.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs import get_logger, get_metrics, kv
from repro.store.atomic import atomic_write_text, atomic_writer, sha256_file
from repro.store.store import STORE_VERSION, META_SUFFIX

if TYPE_CHECKING:  # lazy: repro.core.history imports repro.store.atomic
    from repro.core.history import RunRecord

_log = get_logger("store.checkpoint")


class CampaignCheckpoint:
    """Atomic, fingerprint-validated partial-campaign persistence.

    Parameters
    ----------
    path : checkpoint payload location (an ``.npz``; a ``.meta.json``
        sidecar rides along).
    key : fingerprint of the producing configuration — a checkpoint
        written under a different config is ignored, never resumed.
        Fields a config lists in ``__key_exclude__`` (e.g.
        ``CampaignConfig.substrate``) are not part of the fingerprint,
        so a campaign checkpointed under one substrate resumes under the
        other — safe because the substrates are bit-identical.
    total_runs : the campaign size the checkpoint counts toward.
    """

    def __init__(self, path: "str | Path", *, key: str, total_runs: int) -> None:
        self.path = Path(path)
        self.key = key
        self.total_runs = total_runs

    @property
    def _meta_path(self) -> Path:
        return self.path.with_name(self.path.name + META_SUFFIX)

    # -- persistence -----------------------------------------------------------

    def save(self, records: "list[RunRecord]", extra: "dict[str, Any] | None" = None) -> None:
        """Atomically persist the completed prefix (payload, then sidecar)."""
        from repro.core.history import DataHistory

        with atomic_writer(self.path) as tmp:
            DataHistory(runs=list(records)).save(tmp)
            digest = sha256_file(tmp)
        meta = {
            "store_version": STORE_VERSION,
            "kind": "campaign-checkpoint",
            "sha256": digest,
            "key": self.key,
            "total_runs": self.total_runs,
            "n_done": len(records),
            "extra": extra or {},
        }
        atomic_write_text(self._meta_path, json.dumps(meta, indent=2) + "\n")
        get_metrics().inc("store.checkpoint_saves_total")
        _log.info(
            "checkpoint saved %s",
            kv(path=self.path.name, done=len(records), total=self.total_runs),
        )

    def load(self) -> "tuple[list[RunRecord], dict[str, Any]]":
        """Validated resume state: ``(prefix records, extra)``.

        Anything untrustworthy — missing/corrupt files, checksum or key
        mismatch, a different campaign size — is logged, discarded, and
        reported as an empty prefix (fresh start), never an exception.
        """
        from repro.core.history import DataHistory

        if not self.path.exists() or not self._meta_path.exists():
            if self.path.exists() or self._meta_path.exists():
                self.discard()  # half a checkpoint is no checkpoint
            return [], {}
        try:
            meta = json.loads(self._meta_path.read_text())
            if int(meta.get("store_version", -1)) > STORE_VERSION:
                raise ValueError(f"store version {meta.get('store_version')} too new")
            if meta.get("key") != self.key:
                raise ValueError("config fingerprint mismatch")
            if int(meta.get("total_runs", -1)) != self.total_runs:
                raise ValueError("campaign size mismatch")
            if sha256_file(self.path) != meta.get("sha256"):
                raise ValueError("checksum mismatch (torn write or bit rot)")
            history = DataHistory.load(self.path)
            if len(history) != int(meta.get("n_done", -1)):
                raise ValueError("run count disagrees with sidecar")
            if not 0 < len(history) <= self.total_runs:
                raise ValueError(f"unusable prefix of {len(history)} runs")
        except Exception as exc:
            get_metrics().inc("store.corrupt_total")
            _log.warning(
                "checkpoint invalid, restarting campaign %s",
                kv(path=self.path.name, error=str(exc)),
            )
            self.discard()
            return [], {}
        get_metrics().inc("store.checkpoint_resumes_total")
        _log.info(
            "checkpoint resumed %s",
            kv(path=self.path.name, done=len(history), total=self.total_runs),
        )
        extra = meta.get("extra") or {}
        return list(history.runs), extra if isinstance(extra, dict) else {}

    def discard(self) -> None:
        """Remove the checkpoint (campaign finished, or state untrusted)."""
        self.path.unlink(missing_ok=True)
        self._meta_path.unlink(missing_ok=True)
