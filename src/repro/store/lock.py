"""Advisory file locking for cooperative cold-cache production.

Two drivers racing a cold cache used to both simulate the campaign and
both write the artifact — last-writer-wins, with a torn file if the
writes interleaved. :class:`FileLock` serializes producers: the first
process takes an exclusive ``flock`` on a sidecar lock file, simulates,
and publishes; the others block on the lock, then find the artifact
present and simply load it.

``flock`` locks die with their holder, so a crashed producer never
wedges the cache — the next acquirer just wins the lock. On platforms
without :mod:`fcntl` a create-exclusive spin lock with stale-file
breaking is used instead.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


class LockTimeout(TimeoutError):
    """Could not acquire the lock within the configured timeout."""


class FileLock:
    """Advisory, blocking, inter-process file lock (context manager).

    Attributes ``waited`` / ``wait_seconds`` report (after acquisition)
    whether the lock was contended and for how long — the store feeds
    them into the ``store.lock_waits_total`` / ``store.lock_wait_seconds``
    metrics.
    """

    def __init__(
        self,
        path: "str | Path",
        *,
        timeout: float = 600.0,
        poll_interval: float = 0.05,
    ) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.waited = False
        self.wait_seconds = 0.0
        self._fd: "int | None" = None

    # -- acquisition ----------------------------------------------------------

    def _try_acquire(self) -> bool:
        if fcntl is not None:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                return False
            self._fd = fd
            return True
        return self._try_acquire_exclusive_create()

    def _try_acquire_exclusive_create(self) -> bool:  # pragma: no cover - fallback
        try:
            fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            # Break locks whose holder died without fcntl cleanup.
            try:
                age = time.time() - self.path.stat().st_mtime
                if age > max(2 * self.timeout, 60.0):
                    self.path.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        os.write(fd, str(os.getpid()).encode())
        self._fd = fd
        return True

    def try_acquire(self) -> bool:
        """Non-blocking probe: hold the lock now, or return ``False``.

        The store's ``block=False`` path is built on this — a cooperating
        campaign driver defers a cell another driver is producing instead
        of queueing behind it. On success the caller owns the lock and
        must :meth:`release` it.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._try_acquire():
            self.waited = False
            self.wait_seconds = 0.0
            return True
        return False

    def acquire(self) -> "FileLock":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        start = time.monotonic()
        while True:
            if self._try_acquire():
                self.wait_seconds = time.monotonic() - start
                self.waited = self.wait_seconds >= self.poll_interval
                return self
            if time.monotonic() - start > self.timeout:
                raise LockTimeout(
                    f"could not acquire {self.path} within {self.timeout:.0f}s"
                )
            time.sleep(self.poll_interval)

    def release(self) -> None:
        if self._fd is None:
            return
        if fcntl is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - already gone
                pass
        else:  # pragma: no cover - fallback
            self.path.unlink(missing_ok=True)
        os.close(self._fd)
        self._fd = None

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()
