"""The content-addressed artifact store (``repro.store``).

One directory of named artifacts, each a payload file published
atomically (:mod:`repro.store.atomic`) plus a ``.meta.json`` sidecar
recording the store version, the producing config's fingerprint
(:mod:`repro.store.keys`) and the payload's sha256. Loads verify the
checksum; anything that fails verification — truncated payload, missing
sidecar, version from the future, checksum mismatch — surfaces as
:class:`StoreCorruption` and, on the :meth:`ArtifactStore.get_or_produce`
path, turns into a logged re-production instead of silent garbage.

Concurrency: producers serialize on an advisory per-entry file lock
(:mod:`repro.store.lock`), so two cold-cache drivers cooperate — one
simulates, the other waits and loads the published artifact.

Metrics (via :mod:`repro.obs`): ``store.hits_total``,
``store.misses_total``, ``store.corrupt_total``, ``store.lock_waits_total``
counters and a ``store.lock_wait_seconds`` histogram.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, TypeVar

from repro._version import __version__
from repro.obs import get_logger, get_metrics, kv
from repro.store.atomic import (
    atomic_write_text,
    atomic_writer,
    is_tmp_file,
    sha256_file,
)
from repro.store.lock import FileLock

_log = get_logger("store")

T = TypeVar("T")

#: On-disk layout version; entries written by a newer store are refused.
STORE_VERSION = 1

META_SUFFIX = ".meta.json"
LOCK_DIR = "locks"


class StoreCorruption(RuntimeError):
    """An artifact failed verification (torn write, bit rot, bad meta)."""


class EntryBusy(RuntimeError):
    """Another producer holds this entry's lock (``block=False`` probe).

    Raised instead of waiting so a cooperating driver can work on other
    cells first and come back for this one — the deferral primitive the
    campaign manager's multi-driver sharding is built on.
    """


def default_store_root() -> Path:
    """Resolve the store root: ``$F2PM_CACHE_DIR`` or ``~/.cache/f2pm-repro``."""
    root = os.environ.get("F2PM_CACHE_DIR")
    return Path(root) if root else Path.home() / ".cache" / "f2pm-repro"


@dataclass(frozen=True)
class EntryInfo:
    """One artifact as seen by ``ls``/``info``."""

    name: str
    path: Path
    kind: str
    size_bytes: int
    sha256: str
    fingerprint: "str | None"
    store_version: int
    created_unix: float
    ok: bool
    detail: str = ""


@dataclass(frozen=True)
class GCReport:
    """What a :meth:`ArtifactStore.gc` pass removed."""

    removed: tuple[str, ...]
    freed_bytes: int


class ArtifactStore:
    """Content-addressed, crash-safe artifact persistence."""

    def __init__(self, root: "str | Path | None" = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self.root.mkdir(parents=True, exist_ok=True)

    # -- paths ----------------------------------------------------------------

    def path(self, name: str) -> Path:
        """Payload path of entry *name* (existing or not)."""
        if "/" in name or name.startswith("."):
            raise ValueError(f"invalid artifact name {name!r}")
        return self.root / name

    def _meta_path(self, name: str) -> Path:
        return self.root / f"{name}{META_SUFFIX}"

    def _lock_path(self, name: str) -> Path:
        return self.root / LOCK_DIR / f"{name}.lock"

    # -- writing --------------------------------------------------------------

    def write(
        self,
        name: str,
        writer: Callable[[Path], None],
        *,
        kind: str,
        fingerprint: "str | None" = None,
        extra: "dict | None" = None,
    ) -> Path:
        """Publish an entry: *writer* fills a temp path, then the payload is
        checksummed and atomically replaced, then the meta sidecar follows.

        A crash between payload and sidecar leaves a payload without
        meta — which verification treats as corrupt, so readers re-produce.
        """
        payload = self.path(name)
        with atomic_writer(payload) as tmp:
            writer(tmp)
            digest = sha256_file(tmp)
            size = tmp.stat().st_size
        meta = {
            "store_version": STORE_VERSION,
            "kind": kind,
            "sha256": digest,
            "size_bytes": size,
            "fingerprint": fingerprint,
            "created_unix": time.time(),
            "package_version": __version__,
            "extra": extra or {},
        }
        atomic_write_text(self._meta_path(name), json.dumps(meta, indent=2) + "\n")
        _log.info("store write %s", kv(name=name, kind=kind, bytes=size))
        return payload

    # -- verification and reading ---------------------------------------------

    def read_meta(self, name: str) -> dict:
        """Parse the meta sidecar; :class:`StoreCorruption` if unusable."""
        meta_path = self._meta_path(name)
        if not meta_path.exists():
            raise StoreCorruption(f"{name}: payload present but meta sidecar missing")
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError) as exc:
            raise StoreCorruption(f"{name}: unreadable meta sidecar: {exc}") from exc
        if not isinstance(meta, dict) or "sha256" not in meta:
            raise StoreCorruption(f"{name}: malformed meta sidecar")
        version = int(meta.get("store_version", -1))
        if version > STORE_VERSION:
            raise StoreCorruption(
                f"{name}: written by store version {version}, "
                f"this package supports up to {STORE_VERSION}"
            )
        return meta

    def verify(self, name: str) -> dict:
        """Verify entry *name* end to end; returns its meta.

        Raises :class:`FileNotFoundError` for a clean miss and
        :class:`StoreCorruption` for anything present but untrustworthy.
        """
        payload = self.path(name)
        if not payload.exists():
            if self._meta_path(name).exists():
                raise StoreCorruption(f"{name}: meta sidecar without payload")
            raise FileNotFoundError(name)
        meta = self.read_meta(name)
        digest = sha256_file(payload)
        if digest != meta["sha256"]:
            raise StoreCorruption(
                f"{name}: checksum mismatch (expected {meta['sha256'][:12]}…, "
                f"found {digest[:12]}…) — torn write or bit rot"
            )
        return meta

    def fetch(self, name: str, loader: Callable[[Path], T]) -> T:
        """Verify then load entry *name*; loader failures count as corruption."""
        self.verify(name)
        try:
            return loader(self.path(name))
        except Exception as exc:
            raise StoreCorruption(f"{name}: payload failed to load: {exc}") from exc

    def contains(self, name: str) -> bool:
        """Whether a *verified* entry named *name* exists."""
        try:
            self.verify(name)
            return True
        except (FileNotFoundError, StoreCorruption):
            return False

    # -- the cache protocol ----------------------------------------------------

    def get_or_produce(
        self,
        name: str,
        produce: Callable[[], T],
        save: Callable[[T, Path], None],
        load: Callable[[Path], T],
        *,
        kind: str,
        fingerprint: "str | None" = None,
        lock_timeout: float = 600.0,
        block: bool = True,
    ) -> tuple[T, bool]:
        """Load entry *name*, or produce-and-publish it exactly once.

        Returns ``(value, produced)``. Cold-cache races cooperate via the
        per-entry advisory lock: the first acquirer produces, the rest
        block and then load the published artifact. A corrupt entry is
        evicted and re-produced (logged, counted) rather than raised.

        With ``block=False`` a contended lock raises :class:`EntryBusy`
        instead of waiting — the caller defers this entry and may retry
        (blocking) later, by which time the other producer has usually
        published and the retry is a plain load.
        """
        metrics = get_metrics()
        try:
            value = self.fetch(name, load)
            metrics.inc("store.hits_total")
            return value, False
        except FileNotFoundError:
            metrics.inc("store.misses_total")
        except StoreCorruption:
            # Never evict without the lock: a concurrent producer
            # publishes payload-then-sidecar as two renames, and a
            # reader hitting the gap between them can't tell a
            # half-published entry from a torn write. The under-lock
            # re-check below settles it — a fully published entry loads,
            # genuine corruption is evicted and re-produced there.
            metrics.inc("store.misses_total")

        lock = FileLock(self._lock_path(name), timeout=lock_timeout)
        if block:
            lock.acquire()
        elif not lock.try_acquire():
            metrics.inc("store.busy_total")
            raise EntryBusy(name)
        try:
            if lock.waited:
                metrics.inc("store.lock_waits_total")
                metrics.observe("store.lock_wait_seconds", lock.wait_seconds)
                _log.info(
                    "store lock wait %s",
                    kv(name=name, seconds=round(lock.wait_seconds, 3)),
                )
            # Another producer may have published while we waited.
            try:
                value = self.fetch(name, load)
                metrics.inc("store.hits_total")
                return value, False
            except FileNotFoundError:
                pass
            except StoreCorruption as exc:
                metrics.inc("store.corrupt_total")
                _log.warning(
                    "store corrupt entry under lock, re-producing %s",
                    kv(name=name, error=str(exc)),
                )
                self.evict(name)
            value = produce()
            self.write(name, lambda p: save(value, p), kind=kind, fingerprint=fingerprint)
            return value, True
        finally:
            lock.release()

    # -- maintenance -----------------------------------------------------------

    def _entry_names(self) -> list[str]:
        # Entries are defined by their meta sidecars: the store never
        # claims (or garbage-collects) foreign files that happen to live
        # in the cache directory, e.g. driver manifests. A payload whose
        # sidecar was lost to a crash is simply re-produced on next use.
        return [
            p.name[: -len(META_SUFFIX)]
            for p in sorted(self.root.glob(f"*{META_SUFFIX}"))
        ]

    def entries(self) -> list[EntryInfo]:
        """Inventory every store entry, verifying each."""
        rows: list[EntryInfo] = []
        for name in self._entry_names():
            payload = self.path(name)
            size = payload.stat().st_size if payload.exists() else 0
            try:
                meta = self.verify(name)
                rows.append(
                    EntryInfo(
                        name=name,
                        path=payload,
                        kind=str(meta.get("kind", "?")),
                        size_bytes=size,
                        sha256=str(meta["sha256"]),
                        fingerprint=meta.get("fingerprint"),
                        store_version=int(meta.get("store_version", -1)),
                        created_unix=float(meta.get("created_unix", 0.0)),
                        ok=True,
                    )
                )
            except StoreCorruption as exc:
                rows.append(
                    EntryInfo(
                        name=name,
                        path=payload,
                        kind="?",
                        size_bytes=size,
                        sha256="",
                        fingerprint=None,
                        store_version=-1,
                        created_unix=0.0,
                        ok=False,
                        detail=str(exc),
                    )
                )
        return rows

    def info(self, name: str) -> EntryInfo:
        """Verified :class:`EntryInfo` for one entry (corrupt entries too)."""
        for entry in self.entries():
            if entry.name == name:
                return entry
        raise FileNotFoundError(name)

    def evict(self, name: str) -> None:
        """Remove one entry (payload + sidecar), tolerating partial state."""
        self.path(name).unlink(missing_ok=True)
        self._meta_path(name).unlink(missing_ok=True)

    def gc(self, *, fingerprints: "frozenset[str] | set[str] | None" = None) -> GCReport:
        """Sweep unpublished temporaries, corrupt entries, orphan sidecars.

        With *fingerprints*, additionally evict every (healthy) entry
        whose sidecar fingerprint is in the set — the scope key behind
        ``f2pm cache gc --spec``, where the set is a campaign spec's
        :meth:`~repro.campaign.CampaignSpec.artifact_fingerprints`.
        Checkpoint sidecars record their fingerprint as ``key``; both
        spellings are matched.
        """
        removed: list[str] = []
        freed = 0

        def _rm(path: Path) -> None:
            nonlocal freed
            try:
                freed += path.stat().st_size
                path.unlink()
                removed.append(path.name)
            except OSError:  # pragma: no cover - raced by another gc
                pass

        for p in sorted(self.root.iterdir()):
            if p.is_file() and is_tmp_file(p):
                _rm(p)
        for entry in self.entries():
            if not entry.ok:
                meta = self._meta_path(entry.name)
                _rm(entry.path)
                if meta.exists():
                    _rm(meta)
        if fingerprints is not None:
            scope = set(fingerprints)
            for name in self._entry_names():
                try:
                    meta = self.read_meta(name)
                except StoreCorruption:  # already swept above
                    continue
                fp = meta.get("fingerprint") or meta.get("key")
                if fp in scope:
                    meta_path = self._meta_path(name)
                    if self.path(name).exists():
                        _rm(self.path(name))
                    if meta_path.exists():
                        _rm(meta_path)
        if removed:
            _log.info("store gc %s", kv(removed=len(removed), bytes=freed))
        return GCReport(removed=tuple(removed), freed_bytes=freed)

    def clear(self) -> int:
        """Remove every entry, sidecar, temporary, and lock; returns count."""
        count = 0
        for p in sorted(self.root.iterdir()):
            if p.is_file():
                p.unlink(missing_ok=True)
                count += 1
        lock_dir = self.root / LOCK_DIR
        if lock_dir.is_dir():
            for p in sorted(lock_dir.iterdir()):
                p.unlink(missing_ok=True)
                count += 1
            lock_dir.rmdir()
        _log.info("store cleared %s", kv(root=str(self.root), files=count))
        return count
