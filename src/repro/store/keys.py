"""Canonical, versioned fingerprints for cache keys.

The old experiment cache keyed entries by the config's repr: any change
to a dataclass ``__repr__``, a float's shortest-repr, or the *order* of
fields silently changed (or worse, silently preserved) the key. Keys
here are derived from an explicit canonical encoding instead:

- every value is reduced to a small JSON tree of tagged primitives
  (floats via ``float.hex()``, so the key never depends on repr
  shortening; strings/enums/arrays tagged so types cannot collide);
- dataclasses are encoded field-by-field with **default elision**:
  fields whose value equals the field default are omitted. Adding a new
  defaulted field to a config therefore *preserves* existing cache keys
  (old artifacts stay valid), while setting it to a non-default value
  changes the key — invalidation is always a deliberate act;
- a dataclass may declare ``__key_exclude__`` (a collection of field
  names) for fields that select *how* a result is computed but never
  what it contains — e.g. ``CampaignConfig.substrate``, whose fused and
  loop values produce bit-identical histories. Excluded fields are
  skipped entirely, so artifacts cache-hit across them;
- the encoding embeds :data:`KEY_SCHEMA_VERSION`; bumping it retires
  every existing key at once when the scheme itself changes.

The resulting fingerprint is the sha256 of the canonical JSON, so it is
stable across processes, Python versions, and dataclass refactors that
do not change the *content* of the config.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import math
from typing import Any

import numpy as np

#: Bump to retire every existing cache key (scheme changes, not data changes).
KEY_SCHEMA_VERSION = 1

#: Length of the short digest used in artifact file names.
SHORT_DIGEST_LEN = 16


def _encode_float(value: float) -> str:
    # float.hex() is exact and repr-independent; NaN/inf hex() round-trips too,
    # but normalize NaN payloads so all NaNs key identically.
    if math.isnan(value):
        return "f|nan"
    return f"f|{float(value).hex()}"


def _encode_dataclass(value: Any) -> dict[str, Any]:
    exclude = getattr(type(value), "__key_exclude__", ())
    fields: dict[str, Any] = {}
    for f in dataclasses.fields(value):
        if f.name in exclude:
            continue  # execution-strategy field: see module docstring
        current = getattr(value, f.name)
        if f.default is not dataclasses.MISSING:
            default: Any = f.default
        elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            default = f.default_factory()  # type: ignore[misc]
        else:
            default = _NO_DEFAULT
        if default is not _NO_DEFAULT:
            try:
                if canonical(current) == canonical(default):
                    continue  # default elision: see module docstring
            except TypeError:
                pass  # unencodable default: treat as non-default
        fields[f.name] = canonical(current)
    return {"__fields__": fields}


_NO_DEFAULT = object()


def canonical(value: Any) -> Any:
    """Reduce *value* to its canonical JSON-encodable form.

    Raises :class:`TypeError` for types without a canonical encoding —
    a config holding an arbitrary object must be made explicit (e.g. a
    dataclass or a primitive) before it can key a cache entry.
    """
    if value is None or isinstance(value, bool):
        return value
    if isinstance(value, (np.floating,)):
        return _encode_float(float(value))
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return _encode_float(value)
    if isinstance(value, str):
        return f"s|{value}"
    if isinstance(value, bytes):
        return f"b|{hashlib.sha256(value).hexdigest()}"
    if isinstance(value, enum.Enum):
        return f"e|{value.name}"
    if isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        return {
            "__ndarray__": [
                str(arr.dtype),
                list(arr.shape),
                hashlib.sha256(arr.tobytes()).hexdigest(),
            ]
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _encode_dataclass(value)
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        encoded = [canonical(v) for v in value]
        return {"__set__": sorted(encoded, key=lambda v: json.dumps(v, sort_keys=True))}
    if isinstance(value, dict):
        items = [[canonical(k), canonical(v)] for k, v in value.items()]
        return {"__map__": sorted(items, key=lambda kv: json.dumps(kv[0], sort_keys=True))}
    raise TypeError(
        f"no canonical encoding for {type(value).__name__!r}; "
        "use a dataclass, primitive, or numpy value in cache-keyed configs"
    )


def canonical_json(kind: str, value: Any) -> str:
    """The canonical JSON document a fingerprint hashes."""
    doc = {"schema": KEY_SCHEMA_VERSION, "kind": kind, "value": canonical(value)}
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def fingerprint(kind: str, value: Any) -> str:
    """Full sha256 fingerprint of (*kind*, canonical *value*)."""
    return hashlib.sha256(canonical_json(kind, value).encode()).hexdigest()


def short_fingerprint(kind: str, value: Any, n: int = SHORT_DIGEST_LEN) -> str:
    """Truncated fingerprint for readable artifact file names."""
    return fingerprint(kind, value)[:n]
