"""``repro.store`` — content-addressed, crash-safe artifact persistence.

The single persistence path for everything the reproduction caches:
campaign histories, aggregated datasets, fitted-model envelopes, and
in-flight campaign checkpoints. Four cooperating pieces:

:mod:`repro.store.keys`
    Canonical, versioned config fingerprints (no ``repr()``, no ``id()``):
    float-hex encoding, dataclass default elision, an explicit
    :data:`~repro.store.keys.KEY_SCHEMA_VERSION`.
:mod:`repro.store.atomic`
    ``tmp + fsync + os.replace`` atomic writes and streaming sha256 —
    a ``kill -9`` can never publish a torn file.
:mod:`repro.store.lock`
    Advisory per-entry file locks so concurrent cold-cache drivers
    cooperate (one produces, the rest wait and load).
:mod:`repro.store.store`
    :class:`ArtifactStore`: verified reads (checksum + store version),
    corrupt-entry eviction and re-production, ``ls``/``info``/``gc``/
    ``clear`` maintenance surfaced as ``f2pm cache`` subcommands.
:mod:`repro.store.checkpoint`
    :class:`CampaignCheckpoint`: every-K-runs campaign persistence so a
    killed driver resumes bit-identically instead of restarting.

See ``docs/CACHING.md`` for the key scheme and the on-disk layout.
"""

from repro.store.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    sha256_file,
)
from repro.store.checkpoint import CampaignCheckpoint
from repro.store.keys import (
    KEY_SCHEMA_VERSION,
    canonical,
    canonical_json,
    fingerprint,
    short_fingerprint,
)
from repro.store.lock import FileLock, LockTimeout
from repro.store.store import (
    STORE_VERSION,
    ArtifactStore,
    EntryBusy,
    EntryInfo,
    GCReport,
    StoreCorruption,
    default_store_root,
)

__all__ = [
    "ArtifactStore",
    "CampaignCheckpoint",
    "EntryBusy",
    "EntryInfo",
    "FileLock",
    "GCReport",
    "KEY_SCHEMA_VERSION",
    "LockTimeout",
    "STORE_VERSION",
    "StoreCorruption",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
    "canonical",
    "canonical_json",
    "default_store_root",
    "fingerprint",
    "sha256_file",
    "short_fingerprint",
]
