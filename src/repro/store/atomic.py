"""Atomic file writes and checksums — the crash-safety primitives.

Every persistence path in the package (histories, model envelopes,
aggregated datasets, checkpoints, store metadata) funnels through
:func:`atomic_writer`: content is written to a uniquely-named temporary
file in the *same directory* as the target, fsynced, and published with
``os.replace`` — which is atomic on POSIX and Windows. A crash (or
``kill -9``) at any instant therefore leaves either the old file, no
file, or the complete new file — never a torn one. Leftover temporaries
carry a ``.tmp`` marker in their name so the store's ``gc`` can sweep
them.
"""

from __future__ import annotations

import hashlib
import os
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator


def _tmp_path_for(path: Path) -> Path:
    # Keep the final suffix so extension-sniffing writers (np.savez
    # appends ``.npz`` to names lacking it) write exactly where asked.
    token = f"{os.getpid():x}-{uuid.uuid4().hex[:8]}"
    return path.with_name(f"{path.stem}.{token}.tmp{path.suffix}")


def is_tmp_file(path: "Path | str") -> bool:
    """Whether *path* is an unpublished temporary from :func:`atomic_writer`."""
    name = Path(path).name
    return ".tmp" in Path(name).suffixes or name.endswith(".tmp")


def _fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(path: "str | Path") -> Iterator[Path]:
    """Yield a temporary path; publish it to *path* atomically on success.

    The body writes the complete content to the yielded path. If it
    raises (or the process dies), the target is untouched and the
    temporary is removed (or swept later by ``gc``). On success the
    content is fsynced and ``os.replace``d into place.
    """
    path = Path(path)
    tmp = _tmp_path_for(path)
    try:
        yield tmp
        if not tmp.exists():
            raise FileNotFoundError(
                f"atomic_writer body did not write the temporary file {tmp}"
            )
        _fsync_path(tmp)
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    finally:
        tmp.unlink(missing_ok=True)


def atomic_write_bytes(path: "str | Path", data: bytes) -> Path:
    """Atomically write *data* to *path*; returns the written path."""
    path = Path(path)
    with atomic_writer(path) as tmp:
        tmp.write_bytes(data)
    return path


def atomic_write_text(path: "str | Path", text: str) -> Path:
    """Atomically write *text* (UTF-8) to *path*; returns the written path."""
    return atomic_write_bytes(path, text.encode())


def sha256_file(path: "str | Path", chunk_size: int = 1 << 20) -> str:
    """Streaming sha256 of a file's content (hex digest)."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as fh:
        while True:
            block = fh.read(chunk_size)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()
