"""Command-line interface: ``python -m repro <command>``.

Commands mirror the F2PM workflow:

==============  ========================================================
simulate        run a monitoring campaign, save the DataHistory (.npz)
aggregate       aggregate a history into a training set (.npz)
select          print the Lasso regularization path (Fig. 4 / Table I)
train           run the full F2PM workflow, print the comparison tables
experiments     regenerate every paper table/figure (runall)
rejuvenate      compare rejuvenation policies on a managed horizon
==============  ========================================================

Every command accepts ``--seed`` for reproducibility; campaign sizing
flags default to the small demonstration VM so commands finish quickly.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro._version import __version__
from repro.core import (
    AggregationConfig,
    DataHistory,
    F2PM,
    F2PMConfig,
    LassoFeatureSelector,
    aggregate_history,
)
from repro.system import CampaignConfig, MachineConfig, TestbedSimulator
from repro.utils.tables import render_table


def demo_machine() -> MachineConfig:
    """The small VM used by the CLI defaults (fast demonstrations)."""
    return MachineConfig(
        ram_kb=524_288.0,
        swap_kb=262_144.0,
        os_base_kb=131_072.0,
        app_working_set_kb=65_536.0,
        min_cache_kb=16_384.0,
        shared_kb=8_192.0,
        buffers_kb=4_096.0,
    )


def demo_campaign(n_runs: int, seed: int) -> CampaignConfig:
    return CampaignConfig(
        n_runs=n_runs,
        seed=seed,
        machine=demo_machine(),
        n_browsers=40,
        p_leak_range=(0.3, 0.5),
        leak_kb_range=(1024.0, 4096.0),
        max_run_seconds=3000.0,
    )


def _load_history(path: str) -> DataHistory:
    file = Path(path)
    if not file.exists():
        raise SystemExit(f"error: history file not found: {path}")
    return DataHistory.load(file)


# -- commands --------------------------------------------------------------------


def cmd_simulate(args: argparse.Namespace) -> int:
    config = demo_campaign(args.runs, args.seed)
    if args.browsers is not None:
        config = replace(config, n_browsers=args.browsers)
    history = TestbedSimulator(config).run_campaign()
    history.save(args.output)
    print(
        f"saved {len(history)} runs ({history.n_datapoints} datapoints, "
        f"mean TTF {history.mean_run_length:.0f}s) to {args.output}"
    )
    return 0


def cmd_aggregate(args: argparse.Namespace) -> int:
    history = _load_history(args.history)
    dataset = aggregate_history(
        history, AggregationConfig(window_seconds=args.window)
    )
    np.savez_compressed(
        args.output,
        X=dataset.X,
        y=dataset.y,
        feature_names=np.array(dataset.feature_names),
        run_ids=dataset.run_ids,
    )
    print(
        f"aggregated {history.n_datapoints} datapoints into "
        f"{dataset.n_samples} windows x {dataset.n_features} features "
        f"-> {args.output}"
    )
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    history = _load_history(args.history)
    dataset = aggregate_history(
        history, AggregationConfig(window_seconds=args.window)
    )
    selector = LassoFeatureSelector().fit(dataset)
    rows = [
        [f"1e{int(round(np.log10(lam)))}", count]
        for lam, count in selector.selection_counts()
    ]
    print(render_table(("lambda", "selected"), rows, title="Lasso regularization path"))
    strongest = selector.strongest_with_at_least(args.min_features)
    print(f"\nstrongest selection (lambda = {strongest.lam:.0e}):")
    for name, weight in strongest.weight_table():
        print(f"  {name:24s} {weight:+.12f}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    history = _load_history(args.history)
    models = tuple(args.models.split(","))
    config = F2PMConfig(
        aggregation=AggregationConfig(window_seconds=args.window),
        models=models,
        lasso_predictor_lambdas=(1e0, 1e4, 1e9) if args.lasso_predictors else (),
        smae_threshold_frac=args.smae_frac,
        seed=args.seed,
    )
    result = F2PM(config).run(history)
    print(result.smae_table())
    print()
    print(result.training_time_table())
    print()
    print(result.validation_time_table())
    best = result.best_by_smae("all")
    print(f"\nbest model: {best.name} (S-MAE {best.s_mae:.1f}s)")
    if args.report:
        from repro.core.report import write_markdown_report

        path = write_markdown_report(result, args.report)
        print(f"wrote report to {path}")
    if args.save_model:
        from repro.core.persistence import save_model

        path = save_model(
            result.models[(best.name, "all")],
            args.save_model,
            feature_names=result.dataset.feature_names,
            metadata={"model": best.name, "s_mae": best.s_mae},
        )
        print(f"saved best model ({best.name}) to {path}")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    from repro.core.ingest import CSVTraceSpec, read_campaign_csv

    spec = CSVTraceSpec.identity(
        response_time_column=args.rt_column if args.rt_column else None
    )
    history = read_campaign_csv(args.directory, spec, pattern=args.pattern)
    history.save(args.output)
    print(
        f"ingested {len(history)} runs ({history.n_datapoints} datapoints) "
        f"from {args.directory} -> {args.output}"
    )
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    from repro.core import AggregationConfig, aggregate_history
    from repro.core.persistence import load_model

    envelope = load_model(args.model)
    history = _load_history(args.history)
    dataset = aggregate_history(
        history, AggregationConfig(window_seconds=args.window)
    )
    envelope.check_features(dataset.feature_names)
    pred = envelope.predict(dataset.X)
    print(f"model: {envelope.metadata.get('model', '?')} "
          f"(package {envelope.package_version})")
    n = min(args.limit, pred.shape[0])
    print(f"predicted RTTF for the last {n} windows (seconds):")
    for t, p, actual in zip(
        dataset.X[-n:, 0], pred[-n:], dataset.y[-n:]
    ):
        print(f"  t={t:8.1f}s  predicted={p:8.1f}  actual={actual:8.1f}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runall import main as runall_main

    runall_main()
    return 0


def cmd_rejuvenate(args: argparse.Namespace) -> int:
    from repro.core import F2PM, F2PMConfig
    from repro.rejuvenation import (
        ManagedSystem,
        ManagedSystemConfig,
        NoRejuvenation,
        PeriodicRejuvenation,
        PredictiveRejuvenation,
        summarize,
    )
    from repro.rejuvenation.metrics import AvailabilityReport

    campaign = demo_campaign(args.runs, args.seed)
    history = TestbedSimulator(campaign).run_campaign()
    f2pm = F2PM(
        F2PMConfig(
            aggregation=AggregationConfig(window_seconds=args.window),
            models=("m5p", "reptree"),
            lasso_predictor_lambdas=(),
            seed=args.seed,
        )
    ).run(history)
    best = f2pm.best_by_smae("all")
    model = f2pm.models[(best.name, "all")]

    managed = ManagedSystemConfig(
        horizon_seconds=args.horizon,
        rejuvenation_downtime=30.0,
        crash_downtime=300.0,
        window_seconds=args.window,
    )
    policies = [
        NoRejuvenation(),
        PeriodicRejuvenation(0.5 * min(r.fail_time for r in history)),
        PredictiveRejuvenation(model, rttf_margin=f2pm.smae_threshold),
    ]
    rows = []
    for policy in policies:
        log = ManagedSystem(campaign, managed, policy).run(seed=args.seed + 1)
        rows.append(summarize(log).row())
    print(
        render_table(
            AvailabilityReport.HEADERS,
            rows,
            title=f"Rejuvenation policies over {args.horizon:.0f}s "
            f"(model: {best.name})",
            float_fmt=".4f",
        )
    )
    return 0


# -- parser ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="F2PM: failure-prediction-model framework (IPDPS-W 2015 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="run a monitoring campaign")
    p.add_argument("-o", "--output", default="history.npz")
    p.add_argument("--runs", type=int, default=8)
    p.add_argument("--browsers", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("aggregate", help="aggregate a history into a training set")
    p.add_argument("history")
    p.add_argument("-o", "--output", default="dataset.npz")
    p.add_argument("--window", type=float, default=20.0)
    p.set_defaults(func=cmd_aggregate)

    p = sub.add_parser("select", help="print the Lasso regularization path")
    p.add_argument("history")
    p.add_argument("--window", type=float, default=20.0)
    p.add_argument("--min-features", type=int, default=6)
    p.set_defaults(func=cmd_select)

    p = sub.add_parser("train", help="run the full F2PM workflow")
    p.add_argument("history")
    p.add_argument("--window", type=float, default=20.0)
    p.add_argument("--models", default="linear,m5p,reptree,svm2")
    p.add_argument("--lasso-predictors", action="store_true")
    p.add_argument("--smae-frac", type=float, default=0.10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--report", default=None, help="write a Markdown report here")
    p.add_argument(
        "--save-model", default=None, help="persist the best fitted model here"
    )
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("ingest", help="ingest a directory of CSV run traces")
    p.add_argument("directory")
    p.add_argument("-o", "--output", default="history.npz")
    p.add_argument("--pattern", default="*.csv")
    p.add_argument("--rt-column", default=None)
    p.set_defaults(func=cmd_ingest)

    p = sub.add_parser("predict", help="apply a saved model to a history")
    p.add_argument("model")
    p.add_argument("history")
    p.add_argument("--window", type=float, default=20.0)
    p.add_argument("--limit", type=int, default=10)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("experiments", help="regenerate all paper tables/figures")
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser("rejuvenate", help="compare rejuvenation policies")
    p.add_argument("--runs", type=int, default=8)
    p.add_argument("--horizon", type=float, default=10_000.0)
    p.add_argument("--window", type=float, default=20.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_rejuvenate)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
