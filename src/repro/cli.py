"""Command-line interface: ``f2pm <command>`` (or ``python -m repro``).

Commands mirror the F2PM workflow:

==============  ========================================================
simulate        run a monitoring campaign, save the DataHistory (.npz)
scenarios       list the named scenario presets (`simulate --scenario`)
aggregate       aggregate a history into a training set (.npz)
select          print the Lasso regularization path (Fig. 4 / Table I)
train           run the full F2PM workflow, print the comparison tables
experiments     regenerate every paper table/figure (runall)
rejuvenate      compare rejuvenation policies on a managed horizon
obs             pretty-print a saved trace/metrics/manifest JSON file
top             live dashboard over a --telemetry-jsonl stream
cache           inspect/maintain the artifact store (ls, info, gc, clear)
campaign        plan/run/report a declarative campaign spec (run-missing)
==============  ========================================================

Every command accepts ``--seed`` for reproducibility; campaign sizing
flags default to the small demonstration VM so commands finish quickly.
The commands that simulate campaigns or train model grids (simulate,
train, experiments, rejuvenate) accept ``--jobs N`` (default: all
cores) to fan the work out to worker processes — outputs are identical
for any worker count (see ``docs/PARALLELISM.md``).

Observability flags (valid after any command): ``-v`` / ``-vv`` raise
the log level of the ``repro`` logger hierarchy to INFO / DEBUG,
``--trace-json PATH`` writes the command's span tree, ``--metrics-json
PATH`` writes the metrics-registry snapshot, ``--telemetry-jsonl PATH``
streams live telemetry points/events as tailable JSONL (watch it with
``f2pm top --follow``), ``--telemetry-prom PATH`` writes a
Prometheus-style text snapshot at command end, and ``--no-obs``
disables the whole stack (minimum-overhead runs). All JSON/text
exports are written atomically (``repro.store.atomic``) except the
JSONL stream, which is append-only by design.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro import obs
from repro._version import __version__
from repro.core import (
    AggregationConfig,
    DataHistory,
    F2PM,
    F2PMConfig,
    LassoFeatureSelector,
    aggregate_history,
)
from repro.obs import configure_logging, get_logger, get_metrics, get_tracer, kv
from repro.obs.trace import Span
from repro.parallel import resolve_jobs
from repro.system import CampaignConfig, MachineConfig, TestbedSimulator
from repro.utils.tables import render_table

_log = get_logger("cli")


def demo_machine() -> MachineConfig:
    """The small VM used by the CLI defaults (fast demonstrations)."""
    return MachineConfig(
        ram_kb=524_288.0,
        swap_kb=262_144.0,
        os_base_kb=131_072.0,
        app_working_set_kb=65_536.0,
        min_cache_kb=16_384.0,
        shared_kb=8_192.0,
        buffers_kb=4_096.0,
    )


def demo_campaign(n_runs: int, seed: int) -> CampaignConfig:
    return CampaignConfig(
        n_runs=n_runs,
        seed=seed,
        machine=demo_machine(),
        n_browsers=40,
        p_leak_range=(0.3, 0.5),
        leak_kb_range=(1024.0, 4096.0),
        max_run_seconds=3000.0,
    )


def _load_history(path: str) -> DataHistory:
    file = Path(path)
    _log.info("loading history %s", kv(path=str(file.resolve())))
    if not file.exists():
        raise SystemExit(f"error: history file not found: {path}")
    try:
        return DataHistory.load(file)
    except Exception as exc:
        raise SystemExit(
            f"error: could not load history {path}: {exc}"
        ) from exc


# -- commands --------------------------------------------------------------------


def cmd_simulate(args: argparse.Namespace) -> int:
    config = demo_campaign(args.runs, args.seed)
    if args.scenario is not None:
        from repro.scenarios import get_scenario

        try:
            config = get_scenario(args.scenario).apply(config)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
    if args.browsers is not None:
        config = replace(config, n_browsers=args.browsers)
    if args.max_run is not None:
        config = replace(config, max_run_seconds=args.max_run)
    injector_flags = {
        "time_injectors": "use_time_injectors",
        "lock_injector": "use_lock_injector",
        "fd_injector": "use_fd_injector",
        "conn_injector": "use_conn_injector",
        "frag_injector": "use_frag_injector",
    }
    enabled = {
        field: True
        for flag, field in injector_flags.items()
        if getattr(args, flag)
    }
    if enabled:
        config = replace(config, **enabled)
    if args.failure is not None:
        try:
            config = replace(config, failure=args.failure)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
    config = replace(config, substrate=args.substrate)
    history = TestbedSimulator(config).run_campaign(jobs=resolve_jobs(args.jobs))
    history.save(args.output)
    print(
        f"saved {len(history)} runs ({history.n_datapoints} datapoints, "
        f"mean TTF {history.mean_run_length:.0f}s) to {args.output}"
    )
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    """List the scenario catalog (``f2pm simulate --scenario NAME``)."""
    from repro.scenarios import SCENARIOS, scenario_names

    rows = [
        [s.name, s.workload, s.schedule, s.profile, s.anomaly]
        for s in (SCENARIOS[n] for n in scenario_names())
    ]
    print(
        render_table(
            ("scenario", "workload", "schedule", "machine", "anomaly family"),
            rows,
            title="scenario catalog (use with `f2pm simulate --scenario NAME`)",
        )
    )
    if args.describe:
        print()
        for name in scenario_names():
            print(f"{name}:\n  {SCENARIOS[name].description}")
    return 0


def cmd_aggregate(args: argparse.Namespace) -> int:
    from repro.store import atomic_writer

    history = _load_history(args.history)
    quality = None
    if args.policy is not None:
        from repro.core.sanitize import QualityReport, as_policy

        quality = QualityReport(policy=as_policy(args.policy))
    dataset = aggregate_history(
        history,
        AggregationConfig(window_seconds=args.window),
        sanitize=args.policy,
        quality=quality,
    )
    with atomic_writer(args.output) as tmp:
        with tmp.open("wb") as fh:
            np.savez_compressed(
                fh,
                X=dataset.X,
                y=dataset.y,
                feature_names=np.array(dataset.feature_names),
                run_ids=dataset.run_ids,
            )
    print(
        f"aggregated {history.n_datapoints} datapoints into "
        f"{dataset.n_samples} windows x {dataset.n_features} features "
        f"-> {args.output}"
    )
    if quality is not None and not quality.clean:
        print(quality.summary())
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    history = _load_history(args.history)
    dataset = aggregate_history(
        history, AggregationConfig(window_seconds=args.window)
    )
    selector = LassoFeatureSelector().fit(dataset)
    rows = [
        [f"1e{int(round(np.log10(lam)))}", count]
        for lam, count in selector.selection_counts()
    ]
    print(render_table(("lambda", "selected"), rows, title="Lasso regularization path"))
    strongest = selector.strongest_with_at_least(args.min_features)
    print(f"\nstrongest selection (lambda = {strongest.lam:.0e}):")
    for name, weight in strongest.weight_table():
        print(f"  {name:24s} {weight:+.12f}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    history = _load_history(args.history)
    models = tuple(args.models.split(","))
    config = F2PMConfig(
        aggregation=AggregationConfig(window_seconds=args.window),
        models=models,
        lasso_predictor_lambdas=(1e0, 1e4, 1e9) if args.lasso_predictors else (),
        smae_threshold_frac=args.smae_frac,
        seed=args.seed,
    )
    result = F2PM(config).run(history, jobs=resolve_jobs(args.jobs))
    print(result.smae_table())
    print()
    print(result.training_time_table())
    print()
    print(result.validation_time_table())
    best = result.best_by_smae("all")
    print(f"\nbest model: {best.name} (S-MAE {best.s_mae:.1f}s)")
    if args.report:
        from repro.core.report import write_markdown_report

        path = write_markdown_report(result, args.report)
        print(f"wrote report to {path}")
    if args.save_model:
        from repro.core.persistence import save_model

        path = save_model(
            result.models[(best.name, "all")],
            args.save_model,
            feature_names=result.dataset.feature_names,
            metadata={"model": best.name, "s_mae": best.s_mae},
        )
        print(f"saved best model ({best.name}) to {path}")
    manifest_target = args.manifest
    if manifest_target is None and (args.report or args.save_model):
        # Default: provenance lands next to whichever output was written.
        from repro.obs import manifest_path_for

        manifest_target = manifest_path_for(args.report or args.save_model)
    if manifest_target:
        from repro.obs import write_manifest

        path = write_manifest(result.manifest(), manifest_target)
        print(f"wrote manifest to {path}")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    from repro.core.ingest import CSVTraceSpec, read_campaign_csv
    from repro.core.sanitize import DataQualityError, QualityReport, as_policy

    spec = CSVTraceSpec.identity(
        response_time_column=args.rt_column if args.rt_column else None
    )
    quality = QualityReport(policy=as_policy(args.policy))
    try:
        history = read_campaign_csv(
            args.directory,
            spec,
            pattern=args.pattern,
            policy=args.policy,
            quality=quality,
        )
    except DataQualityError as exc:
        raise SystemExit(f"error: dirty trace rejected under --policy=strict\n{exc}")
    history.save(args.output)
    print(
        f"ingested {len(history)} runs ({history.n_datapoints} datapoints) "
        f"from {args.directory} -> {args.output}"
    )
    if not quality.clean:
        print(quality.summary())
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Corrupt a saved history with a deterministic fault profile.

    Writes one CSV per corrupted run (the canonical 15-column layout, so
    ``f2pm ingest`` reads the output back) and, with ``--check``, routes
    every dirty run through the sanitize layer and prints the verdicts.
    """
    import csv as _csv

    from repro.core.datapoint import FEATURES
    from repro.core.sanitize import (
        DataQualityError,
        QualityReport,
        as_policy,
        sanitize_run,
    )
    from repro.faults import FaultProfile

    history = _load_history(args.history)
    profile = (
        FaultProfile.from_spec(args.spec)
        if args.spec
        else FaultProfile.preset(args.preset)
    )
    dirty = profile.apply_history(history, seed=args.seed)
    outdir = Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)
    for i, run in enumerate(dirty):
        path = outdir / f"run{i:03d}.csv"
        with path.open("w", newline="") as fh:
            writer = _csv.writer(fh)
            writer.writerow(FEATURES)
            for row in run.features:
                writer.writerow(format(float(v), ".17g") for v in row)
    n_rows = sum(r.n_datapoints for r in dirty)
    source = args.spec if args.spec else f"preset {args.preset!r}"
    print(
        f"corrupted {len(dirty)} runs ({n_rows} datapoints) with {source} "
        f"(seed {args.seed}) -> {outdir}/"
    )
    if args.check:
        policy = as_policy(args.check)
        quality = QualityReport(policy=policy)
        rejected = 0
        for i, run in enumerate(dirty):
            try:
                _, report = sanitize_run(
                    run, policy=policy, run_index=i, label=f"run{i:03d}.csv"
                )
                quality.add(report)
            except DataQualityError as exc:
                rejected += 1
                first = exc.issues[0].message if exc.issues else str(exc)
                print(f"run{i:03d}: REJECTED ({len(exc.issues)} issues; {first})")
        if rejected:
            print(f"{rejected}/{len(dirty)} runs rejected under policy {policy!r}")
        if quality.runs:
            print(quality.summary())
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    from repro.core import AggregationConfig, aggregate_history
    from repro.core.persistence import load_model

    envelope = load_model(args.model)
    history = _load_history(args.history)
    dataset = aggregate_history(
        history, AggregationConfig(window_seconds=args.window)
    )
    envelope.check_features(dataset.feature_names)
    pred = envelope.predict(dataset.X)
    print(f"model: {envelope.metadata.get('model', '?')} "
          f"(package {envelope.package_version})")
    n = min(args.limit, pred.shape[0])
    print(f"predicted RTTF for the last {n} windows (seconds):")
    for t, p, actual in zip(
        dataset.X[-n:, 0], pred[-n:], dataset.y[-n:]
    ):
        print(f"  t={t:8.1f}s  predicted={p:8.1f}  actual={actual:8.1f}")
    return 0


def cmd_model(args: argparse.Namespace) -> int:
    from repro.core import AggregationConfig, aggregate_history
    from repro.core.evaluation import resolve_smae_threshold
    from repro.core.persistence import load_model, save_model
    from repro.ml.model_selection import train_test_split
    from repro.ml.serving import compile_predictor

    try:
        envelope = load_model(args.model)
    except FileNotFoundError:
        raise SystemExit(f"error: model file not found: {args.model}")
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    history = _load_history(args.history)
    dataset = aggregate_history(
        history, AggregationConfig(window_seconds=args.window)
    )
    envelope.check_features(dataset.feature_names)
    smae_threshold = resolve_smae_threshold(
        None, args.smae_frac, history.mean_run_length
    )
    tol = args.tol if args.tol is not None else 0.10 * smae_threshold
    _, X_val, _, y_val = train_test_split(
        dataset.X, dataset.y, test_size=args.val_fraction, seed=args.seed
    )
    compiled = compile_predictor(
        envelope.model,
        budget=args.budget,
        tol=tol,
        X_val=X_val,
        y_val=y_val,
        smae_threshold=smae_threshold,
        dtype=args.dtype,
        landmark_seed=args.seed,
    )
    rep = compiled.report
    print(
        f"compile: {rep.reason} "
        f"(refs {rep.n_reference_rows_exact} -> {rep.n_reference_rows}, "
        f"pruned {rep.n_pruned}, merged {rep.n_merged}, "
        f"landmarks {rep.n_landmarks}, dtype {rep.dtype}, "
        f"{rep.compile_seconds * 1e3:.1f} ms)"
    )
    if rep.gate_delta is not None:
        print(
            f"gate: S-MAE exact {rep.smae_exact:.2f}s, "
            f"compiled {rep.smae_compiled:.2f}s, "
            f"delta {rep.gate_delta:+.2f}s (tol {rep.tol:.2f}s, "
            f"threshold {rep.smae_threshold:.1f}s)"
        )
    out = args.output or args.model
    path = save_model(
        envelope.model,
        out,
        feature_names=envelope.feature_names,
        metadata={**envelope.metadata, "compiled": rep.reason},
        compiled=compiled,
    )
    print(f"saved envelope with compiled artifact to {path}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runall import main as runall_main

    runall_main(jobs=resolve_jobs(args.jobs))
    return 0


def _slowest_spans(trees: "list[Span]", limit: int) -> "list[list[object]]":
    """Aggregate a span forest into the ``limit`` slowest span names.

    Groups every span in every tree by name and ranks by *self* time
    (duration minus direct children), so a parent that merely contains
    slow children doesn't crowd out the actual hot spots. Returns table
    rows: name, count, total self seconds, total inclusive seconds.
    """
    agg: dict[str, list[float]] = {}  # name -> [count, self_s, total_s]
    for tree in trees:
        for span in tree.walk():
            child_s = sum(c.duration for c in span.children)
            self_s = max(0.0, span.duration - child_s)
            entry = agg.setdefault(span.name, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += self_s
            entry[2] += span.duration
    ranked = sorted(agg.items(), key=lambda kv: kv[1][1], reverse=True)
    return [
        [name, int(count), self_s, total_s]
        for name, (count, self_s, total_s) in ranked[:limit]
    ]


def cmd_obs(args: argparse.Namespace) -> int:
    """Pretty-print a saved observability document.

    Accepts any of the three JSON layouts the pipeline emits — a trace
    (``--trace-json``), a metrics snapshot (``--metrics-json``) or a run
    manifest — and renders the human view: the indented span tree and/or
    the metric tables. ``--top N`` swaps the tree for a ranked table of
    the N slowest span names aggregated over the whole forest.
    """
    file = Path(args.file)
    if not file.exists():
        raise SystemExit(f"error: file not found: {args.file}")
    try:
        doc = json.loads(file.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: could not parse {args.file}: {exc}") from exc
    if not isinstance(doc, dict):
        raise SystemExit(f"error: {args.file} is not an observability document")

    printed = False
    if "schema" in doc:  # manifest
        pkg = doc.get("package", {})
        print(
            f"manifest: kind={doc.get('kind', '?')} "
            f"package={pkg.get('name', '?')}-{pkg.get('version', '?')} "
            f"python={doc.get('python', '?')}"
        )
        printed = True
    trees = []
    if "trace" in doc and doc["trace"]:
        trees = [doc["trace"]]
    elif "spans" in doc:
        trees = doc["spans"]
    if trees:
        parsed = [Span.from_dict(t) for t in trees]
        if getattr(args, "top", None):
            rows = _slowest_spans(parsed, args.top)
            print(
                render_table(
                    ("span", "count", "self_s", "total_s"),
                    rows,
                    title=f"top {args.top} slowest spans (by self time)",
                    float_fmt=".6f",
                )
            )
        else:
            print("\n".join(s.render() for s in parsed))
        printed = True
    metrics_doc = doc.get("metrics", doc if "counters" in doc else None)
    if metrics_doc:
        for section in ("counters", "gauges"):
            values = metrics_doc.get(section)
            if values:
                print(
                    render_table(
                        ("name", "value"),
                        [[k, v] for k, v in values.items()],
                        title=section,
                    )
                )
                printed = True
        histograms = metrics_doc.get("histograms")
        if histograms:
            rows = [
                [
                    name,
                    h.get("count", 0),
                    h.get("mean", 0.0),
                    h.get("min", 0.0),
                    h.get("p50", 0.0),
                    h.get("p99", 0.0),
                    h.get("max", 0.0),
                ]
                for name, h in histograms.items()
            ]
            print(
                render_table(
                    ("histogram", "count", "mean", "min", "p50", "p99", "max"),
                    rows,
                    title="histograms",
                    float_fmt=".6g",
                )
            )
            printed = True
    if not printed:
        raise SystemExit(
            f"error: {args.file} contains neither a trace, metrics, nor a manifest"
        )
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over a ``--telemetry-jsonl`` stream.

    ``--once`` renders a single frame and exits (scriptable/CI mode);
    the default follows the stream, redrawing every ``--interval``
    seconds until interrupted.
    """
    from repro.obs.dashboard import run_top

    return run_top(
        args.file,
        follow=not args.once,
        interval=args.interval,
        once=args.once,
        max_frames=args.frames,
    )


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect and maintain the experiment artifact store (``repro.store``)."""
    import datetime

    from repro.store import ArtifactStore, StoreCorruption

    store = ArtifactStore(args.dir)  # None -> F2PM_CACHE_DIR / default

    if args.cache_command == "ls":
        entries = store.entries()
        if not entries:
            print(f"cache {store.root}: empty")
            return 0
        rows = []
        for e in entries:
            created = (
                datetime.datetime.fromtimestamp(e.created_unix).isoformat(
                    sep=" ", timespec="seconds"
                )
                if e.created_unix
                else "?"
            )
            rows.append(
                [
                    e.name,
                    e.kind,
                    f"{e.size_bytes / 1024:.1f}",
                    "ok" if e.ok else "CORRUPT",
                    created,
                ]
            )
        print(
            render_table(
                ("entry", "kind", "KiB", "status", "created"),
                rows,
                title=f"artifact store: {store.root}",
            )
        )
        bad = [e for e in entries if not e.ok]
        if bad:
            print(f"\n{len(bad)} corrupt entr{'y' if len(bad) == 1 else 'ies'} "
                  "(run `f2pm cache gc` to sweep):")
            for e in bad:
                print(f"  {e.name}: {e.detail}")
        return 0

    if args.cache_command == "info":
        try:
            meta = store.verify(args.name)
        except FileNotFoundError:
            raise SystemExit(f"error: no cache entry named {args.name}")
        except StoreCorruption as exc:
            raise SystemExit(f"error: entry is corrupt: {exc}")
        print(json.dumps({"name": args.name, **meta}, indent=2))
        return 0

    if args.cache_command == "gc":
        fingerprints = None
        if getattr(args, "spec", None):
            from repro.campaign import CampaignSpec

            try:
                spec = CampaignSpec.from_json_file(args.spec)
            except ValueError as exc:
                raise SystemExit(f"error: {exc}")
            fingerprints = spec.artifact_fingerprints()
        report = store.gc(fingerprints=fingerprints)
        print(
            f"removed {len(report.removed)} file(s), "
            f"freed {report.freed_bytes / 1024:.1f} KiB"
        )
        for name in report.removed:
            print(f"  {name}")
        return 0

    if args.cache_command == "clear":
        count = store.clear()
        print(f"cleared {count} file(s) from {store.root}")
        return 0

    raise SystemExit(f"error: unknown cache command {args.cache_command!r}")


def cmd_campaign(args: argparse.Namespace) -> int:
    """Plan, run, or report a declarative campaign spec.

    ``plan`` prints the spec-vs-store diff (which cells/stages are cached,
    which are missing) without executing anything; ``run`` executes only
    the missing frontier; ``status`` emits the machine-readable JSON form
    of the diff.
    """
    from repro.campaign import CampaignError, CampaignManager, CampaignSpec
    from repro.store import ArtifactStore

    try:
        spec = CampaignSpec.from_json_file(args.spec)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    manager = CampaignManager(spec, ArtifactStore(args.dir))

    if args.campaign_command == "plan":
        print(manager.plan().summary())
        return 0

    if args.campaign_command == "status":
        print(json.dumps(manager.status(), indent=2, sort_keys=True))
        return 0

    if args.campaign_command == "run":
        print(manager.plan().summary())
        try:
            result = manager.run(
                jobs=resolve_jobs(args.jobs), cooperate=not args.no_cooperate
            )
        except CampaignError as exc:
            raise SystemExit(f"error: {exc}")
        print(
            f"done: cached={result.cells_cached} run={result.cells_run} "
            f"failed={result.cells_failed}"
        )
        return 0

    raise SystemExit(f"error: unknown campaign command {args.campaign_command!r}")


def cmd_rejuvenate(args: argparse.Namespace) -> int:
    from repro.core import F2PM, F2PMConfig
    from repro.rejuvenation import (
        ManagedSystem,
        ManagedSystemConfig,
        NoRejuvenation,
        PeriodicRejuvenation,
        PredictiveRejuvenation,
        summarize,
    )
    from repro.rejuvenation.metrics import AvailabilityReport

    jobs = resolve_jobs(args.jobs)
    campaign = demo_campaign(args.runs, args.seed)
    campaign = replace(campaign, substrate=args.substrate)
    history = TestbedSimulator(campaign).run_campaign(jobs=jobs)
    f2pm = F2PM(
        F2PMConfig(
            aggregation=AggregationConfig(window_seconds=args.window),
            models=("m5p", "reptree"),
            lasso_predictor_lambdas=(),
            seed=args.seed,
        )
    ).run(history, jobs=jobs)
    best = f2pm.best_by_smae("all")
    model = f2pm.models[(best.name, "all")]
    if args.compiled:
        from repro.ml.model_selection import train_test_split
        from repro.ml.serving import compile_predictor

        _, X_val, _, y_val = train_test_split(
            f2pm.dataset.X, f2pm.dataset.y, test_size=0.25, seed=args.seed
        )
        model = compile_predictor(
            model,
            tol=0.10 * f2pm.smae_threshold,
            X_val=X_val,
            y_val=y_val,
            smae_threshold=f2pm.smae_threshold,
        )
        print(f"compiled scoring model: {model.report.reason}")

    managed = ManagedSystemConfig(
        horizon_seconds=args.horizon,
        rejuvenation_downtime=30.0,
        crash_downtime=300.0,
        window_seconds=args.window,
    )
    policies = [
        NoRejuvenation(),
        PeriodicRejuvenation(0.5 * min(r.fail_time for r in history)),
        PredictiveRejuvenation(model, rttf_margin=f2pm.smae_threshold),
    ]
    rows = []
    for policy in policies:
        log = ManagedSystem(campaign, managed, policy).run(seed=args.seed + 1)
        rows.append(summarize(log).row())
    print(
        render_table(
            AvailabilityReport.HEADERS,
            rows,
            title=f"Rejuvenation policies over {args.horizon:.0f}s "
            f"(model: {best.name})",
            float_fmt=".4f",
        )
    )
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.rejuvenation import (
        FleetConfig,
        FleetController,
        FleetReport,
        ManagedSystemConfig,
        NoRejuvenation,
        PeriodicRejuvenation,
        PredictiveRejuvenation,
        SyntheticFleetSource,
        SyntheticFleetSpec,
        summarize_fleet,
    )

    spec = SyntheticFleetSpec()
    managed = ManagedSystemConfig(
        horizon_seconds=args.horizon,
        rejuvenation_downtime=30.0,
        crash_downtime=300.0,
        window_seconds=args.window,
    )
    fleet = FleetConfig(
        n_nodes=args.nodes,
        capacity_floor=args.capacity_floor,
        drain_seconds=args.drain,
        engine=args.engine,
        scoring="compiled" if args.compiled else "exact",
    )
    policies = [
        NoRejuvenation(),
        PeriodicRejuvenation(0.5 * spec.mean_ttf),
        PredictiveRejuvenation(spec.linear_model(), rttf_margin=150.0),
    ]
    rows = []
    for policy in policies:
        controller = FleetController(
            SyntheticFleetSource(spec), managed, policy, fleet
        )
        rows.append(summarize_fleet(controller.run(seed=args.seed)).row())
    print(
        render_table(
            FleetReport.HEADERS,
            rows,
            title=f"Fleet of {args.nodes} nodes over {args.horizon:.0f}s "
            f"({args.engine} scoring, floor {args.capacity_floor:.0%})",
            float_fmt=".4f",
        )
    )
    return 0


# -- parser ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="f2pm",
        description="F2PM: failure-prediction-model framework (IPDPS-W 2015 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)

    # Observability flags, valid after every subcommand (``f2pm train h.npz
    # -v --trace-json t.json``); a parent parser gives each subparser the
    # same group without repeating it.
    obs_parent = argparse.ArgumentParser(add_help=False)
    group = obs_parent.add_argument_group("observability")
    group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="-v: phase-level INFO events; -vv: DEBUG firehose",
    )
    group.add_argument(
        "--trace-json",
        metavar="PATH",
        default=None,
        help="write the command's span tree as JSON",
    )
    group.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="write the metrics-registry snapshot as JSON",
    )
    group.add_argument(
        "--telemetry-jsonl",
        metavar="PATH",
        default=None,
        help="stream live telemetry points/events to PATH as tailable "
        "JSONL (watch with `f2pm top --follow PATH`)",
    )
    group.add_argument(
        "--telemetry-prom",
        metavar="PATH",
        default=None,
        help="write a Prometheus text-exposition snapshot at command end",
    )
    group.add_argument(
        "--no-obs",
        action="store_true",
        help="disable tracing, metrics and telemetry for this command",
    )

    # Execution flags for the commands that simulate campaigns or train
    # model grids; results are identical for any --jobs value (the
    # determinism guarantee of docs/PARALLELISM.md).
    exec_parent = argparse.ArgumentParser(add_help=False)
    exec_parent.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for simulation runs and model fits "
        "(default: all cores)",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name: str, parallel: bool = False, **kwargs):
        parents = [obs_parent, exec_parent] if parallel else [obs_parent]
        return sub.add_parser(name, parents=parents, **kwargs)

    p = add_parser("simulate", parallel=True, help="run a monitoring campaign")
    p.add_argument("-o", "--output", default="history.npz")
    p.add_argument("--runs", type=int, default=8)
    p.add_argument("--browsers", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="apply a named catalog preset over the demo campaign "
        "(list them with `f2pm scenarios`)",
    )
    p.add_argument(
        "--max-run",
        type=float,
        default=None,
        metavar="S",
        help="per-run horizon in seconds (slow-aging scenarios such as "
        "lock-contention need more than the demo default of 3000)",
    )
    p.add_argument(
        "--failure",
        default=None,
        metavar="SPEC",
        help="failure condition spec: mem[:headroom], rt>SECONDS, "
        "gen>SECONDS, fd[:fill]; '|' combines alternatives",
    )
    for flag, family in (
        ("--time-injectors", "Sec. III-E time-based leak/thread storms"),
        ("--lock-injector", "stuck application locks"),
        ("--fd-injector", "fd/socket leaks"),
        ("--conn-injector", "connection-pool depletion"),
        ("--frag-injector", "heap fragmentation"),
    ):
        p.add_argument(
            flag, action="store_true", help=f"enable the {family} injector"
        )
    p.add_argument(
        "--substrate",
        choices=("fused", "loop"),
        default="fused",
        help="simulation engine: event-fused fast path or the legacy "
        "per-tick loop (bit-identical output; see docs/PERFORMANCE.md)",
    )
    p.set_defaults(func=cmd_simulate)

    p = add_parser("scenarios", help="list the named scenario presets")
    p.add_argument(
        "--describe",
        action="store_true",
        help="also print each preset's one-paragraph description",
    )
    p.set_defaults(func=cmd_scenarios)

    p = add_parser("aggregate", help="aggregate a history into a training set")
    p.add_argument("history")
    p.add_argument("-o", "--output", default="dataset.npz")
    p.add_argument("--window", type=float, default=20.0)
    p.add_argument(
        "--policy",
        choices=("strict", "repair", "quarantine"),
        default=None,
        help="route the history through the sanitize layer first "
        "(default: trust the input; see docs/ROBUSTNESS.md)",
    )
    p.set_defaults(func=cmd_aggregate)

    p = add_parser("select", help="print the Lasso regularization path")
    p.add_argument("history")
    p.add_argument("--window", type=float, default=20.0)
    p.add_argument("--min-features", type=int, default=6)
    p.set_defaults(func=cmd_select)

    p = add_parser("train", parallel=True, help="run the full F2PM workflow")
    p.add_argument("history")
    p.add_argument("--window", type=float, default=20.0)
    p.add_argument("--models", default="linear,m5p,reptree,svm2")
    p.add_argument("--lasso-predictors", action="store_true")
    p.add_argument("--smae-frac", type=float, default=0.10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--report", default=None, help="write a Markdown report here")
    p.add_argument(
        "--save-model", default=None, help="persist the best fitted model here"
    )
    p.add_argument(
        "--manifest",
        default=None,
        help="write the run manifest here (defaults to beside --report/--save-model)",
    )
    p.set_defaults(func=cmd_train)

    p = add_parser("ingest", help="ingest a directory of CSV run traces")
    p.add_argument("directory")
    p.add_argument("-o", "--output", default="history.npz")
    p.add_argument("--pattern", default="*.csv")
    p.add_argument("--rt-column", default=None)
    p.add_argument(
        "--policy",
        choices=("strict", "repair", "quarantine"),
        default="repair",
        help="data-quality policy for dirty traces (default: repair; "
        "see docs/ROBUSTNESS.md)",
    )
    p.set_defaults(func=cmd_ingest)

    from repro.faults import PRESETS

    p = add_parser("faults", help="corrupt a history with a fault profile")
    p.add_argument("history", help="clean history (.npz) to corrupt")
    p.add_argument(
        "-o", "--output", default="dirty", help="directory for the dirty run CSVs"
    )
    p.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="default",
        help="named fault profile (default: a bit of everything)",
    )
    p.add_argument(
        "--spec",
        default=None,
        metavar="MODEL=RATE,...",
        help="explicit profile, e.g. 'nan=0.05,dup=0.02,reset=1' "
        "(overrides --preset)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--check",
        choices=("strict", "repair", "quarantine"),
        default=None,
        help="also run the sanitize layer over the dirty runs and print "
        "its verdicts",
    )
    p.set_defaults(func=cmd_faults)

    p = add_parser("predict", help="apply a saved model to a history")
    p.add_argument("model")
    p.add_argument("history")
    p.add_argument("--window", type=float, default=20.0)
    p.add_argument("--limit", type=int, default=10)
    p.set_defaults(func=cmd_predict)

    p = add_parser("model", help="manage saved model envelopes")
    model_sub = p.add_subparsers(dest="model_cmd", required=True)
    sp = model_sub.add_parser(
        "compile",
        help="compile a saved model for fast serving (accuracy-gated; "
        "see docs/PERFORMANCE.md)",
    )
    sp.add_argument("model", help="saved envelope (from train --save-model)")
    sp.add_argument("history", help="history (.npz) to gate accuracy against")
    sp.add_argument(
        "-o",
        "--output",
        default=None,
        help="output envelope path (default: rewrite MODEL in place)",
    )
    sp.add_argument("--window", type=float, default=20.0)
    sp.add_argument(
        "--budget",
        type=int,
        default=128,
        help="max serving reference rows before Nystrom factorization",
    )
    sp.add_argument(
        "--tol",
        type=float,
        default=None,
        metavar="S",
        help="max tolerated S-MAE increase in seconds "
        "(default: 10%% of the S-MAE threshold)",
    )
    sp.add_argument(
        "--dtype", choices=("float32", "float64"), default="float32"
    )
    sp.add_argument("--smae-frac", type=float, default=0.10)
    sp.add_argument(
        "--val-fraction",
        type=float,
        default=0.25,
        help="held-out fraction the accuracy gate scores against",
    )
    sp.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_model)

    p = add_parser(
        "experiments", parallel=True, help="regenerate all paper tables/figures"
    )
    p.set_defaults(func=cmd_experiments)

    p = add_parser("rejuvenate", parallel=True, help="compare rejuvenation policies")
    p.add_argument("--runs", type=int, default=8)
    p.add_argument("--horizon", type=float, default=10_000.0)
    p.add_argument("--window", type=float, default=20.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--substrate",
        choices=("fused", "loop"),
        default="fused",
        help="simulation engine for the training campaign "
        "(bit-identical output; see docs/PERFORMANCE.md)",
    )
    p.add_argument(
        "--compiled",
        action="store_true",
        help="serve the predictive policy through the compiled predict "
        "plane (accuracy-gated; see docs/PERFORMANCE.md)",
    )
    p.set_defaults(func=cmd_rejuvenate)

    p = add_parser(
        "fleet", help="simulate a fleet of managed nodes under one policy engine"
    )
    p.add_argument("--nodes", type=int, default=100)
    p.add_argument("--horizon", type=float, default=3000.0)
    p.add_argument("--window", type=float, default=20.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--engine",
        choices=("batched", "scalar"),
        default="batched",
        help="RTTF scoring engine: one batched model call per tick, or "
        "the per-node scalar oracle (bit-identical; see docs/FLEET.md)",
    )
    p.add_argument(
        "--capacity-floor",
        type=float,
        default=0.8,
        metavar="FRAC",
        help="defer planned restarts while live capacity would drop "
        "below this fraction (default: 0.8)",
    )
    p.add_argument(
        "--drain",
        type=float,
        default=0.0,
        metavar="S",
        help="drain a node for S seconds before a planned restart",
    )
    p.add_argument(
        "--compiled",
        action="store_true",
        help="score RTTF through the compiled predict plane "
        "(batched engine only; see docs/PERFORMANCE.md)",
    )
    p.set_defaults(func=cmd_fleet)

    p = add_parser("obs", help="pretty-print a saved trace/metrics/manifest")
    p.add_argument("file", help="JSON written by --trace-json/--metrics-json/--manifest")
    p.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="show the N slowest span names aggregated over the span "
        "tree (ranked by self time) instead of the full tree",
    )
    p.set_defaults(func=cmd_obs)

    p = add_parser("top", help="live dashboard over a --telemetry-jsonl stream")
    p.add_argument("file", help="JSONL stream written by --telemetry-jsonl")
    p.add_argument(
        "--once",
        action="store_true",
        help="render one frame from the stream as-is and exit",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="S",
        help="redraw period in follow mode (default: 1s)",
    )
    p.add_argument(
        "--frames",
        type=int,
        default=None,
        metavar="N",
        help="stop after N frames in follow mode (default: run forever)",
    )
    p.set_defaults(func=cmd_top)

    p = add_parser("cache", help="inspect/maintain the experiment artifact store")
    p.add_argument(
        "--dir",
        default=None,
        metavar="PATH",
        help="store directory (default: $F2PM_CACHE_DIR or ~/.cache/f2pm-repro)",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("ls", help="list entries with verification status")
    sp = cache_sub.add_parser("info", help="print one entry's verified metadata")
    sp.add_argument("name", help="entry name as shown by `cache ls`")
    sp = cache_sub.add_parser(
        "gc", help="sweep unpublished temporaries and corrupt entries"
    )
    sp.add_argument(
        "--spec",
        default=None,
        metavar="SPEC.json",
        help="additionally evict every artifact owned by this campaign "
        "spec (scoped by fingerprint; other campaigns' entries stay)",
    )
    cache_sub.add_parser("clear", help="remove every cached artifact")
    p.set_defaults(func=cmd_cache)

    p = add_parser(
        "campaign",
        help="plan/run/report a declarative campaign spec (run-missing)",
    )
    p.add_argument(
        "--dir",
        default=None,
        metavar="PATH",
        help="store directory (default: $F2PM_CACHE_DIR or ~/.cache/f2pm-repro)",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)
    sp = campaign_sub.add_parser(
        "plan", help="print the missing/cached cell diff without executing"
    )
    sp.add_argument("spec", help="campaign spec JSON file")
    sp = campaign_sub.add_parser(
        "run", help="execute only the missing cells, load the rest"
    )
    sp.add_argument("spec", help="campaign spec JSON file")
    sp.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes per cell simulation (default: all cores)",
    )
    sp.add_argument(
        "--no-cooperate",
        action="store_true",
        help="block on busy cells instead of deferring them (single-driver "
        "mode; cooperating drivers defer and circle back)",
    )
    sp = campaign_sub.add_parser(
        "status", help="emit the spec-vs-store diff as JSON"
    )
    sp.add_argument("spec", help="campaign spec JSON file")
    p.set_defaults(func=cmd_campaign)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(getattr(args, "verbose", 0))
    was_enabled = obs.enabled()
    # Fresh measurement window per CLI invocation, so the exported
    # trace/metrics describe exactly this command (and nothing leaks
    # into a --no-obs export from earlier work in this process).
    obs.reset()
    if getattr(args, "no_obs", False):
        obs.disable()
    exporter = None
    if getattr(args, "telemetry_jsonl", None) and not getattr(args, "no_obs", False):
        from repro.obs.telemetry import JsonlExporter, get_telemetry

        exporter = JsonlExporter(
            args.telemetry_jsonl, meta={"command": args.command}
        )
        get_telemetry().add_sink(exporter)
    try:
        rc = args.func(args)
        # Post-run exports are snapshots, so they go through the atomic
        # writer (tmp + fsync + rename): a killed command leaves either
        # the previous file or the complete new one, never a torn JSON.
        from repro.store import atomic_write_text

        if getattr(args, "trace_json", None):
            atomic_write_text(args.trace_json, get_tracer().to_json() + "\n")
            print(f"wrote trace to {args.trace_json}", file=sys.stderr)
        if getattr(args, "metrics_json", None):
            atomic_write_text(args.metrics_json, get_metrics().to_json() + "\n")
            print(f"wrote metrics to {args.metrics_json}", file=sys.stderr)
        if getattr(args, "telemetry_prom", None):
            from repro.obs.telemetry import prometheus_text

            atomic_write_text(args.telemetry_prom, prometheus_text())
            print(
                f"wrote prometheus snapshot to {args.telemetry_prom}",
                file=sys.stderr,
            )
    finally:
        if exporter is not None:
            from repro.obs.telemetry import get_telemetry

            get_telemetry().remove_sink(exporter)
            exporter.close()
            print(
                f"wrote telemetry stream to {args.telemetry_jsonl}",
                file=sys.stderr,
            )
        if getattr(args, "no_obs", False) and was_enabled:
            obs.enable()
    return rc


if __name__ == "__main__":
    sys.exit(main())
