"""Process-wide metrics registry: named counters, gauges, histograms.

The pipeline's long-lived quantities — datapoints sampled, runs
simulated, fail events, predictions served, per-model fit/predict
latencies — accumulate here. The registry is append-cheap by design:

- instruments are created lazily on first use and kept in dicts;
- every recording call (``inc`` / ``set_gauge`` / ``observe``) starts
  with one ``enabled`` check and returns immediately when the registry
  is disabled, so instrumented hot paths (one counter bump per FMC
  datapoint) cost a single attribute read when observability is off;
- ``snapshot()`` produces a plain-dict view (JSON-ready) without
  stopping collection, and ``reset()`` starts a fresh window.

The process-wide default registry is reached via :func:`get_metrics`;
:class:`MetricsRegistry` instances can also be created standalone for
tests or isolated components.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Any


class Counter:
    """Monotonically-increasing count (events, rows, failures)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counters only increase, got {n}")
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value (sizes, thresholds)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: Log-bucket resolution: bucket boundaries at powers of ``2**(1/4)``
#: (four buckets per octave, ~19% relative width, so quantile estimates
#: carry at most ~±9% relative error around each bucket's midpoint).
_BUCKETS_PER_OCTAVE = 4
#: Bucket-index clamp range: values outside [2^-40, 2^24] (~1e-12 s to
#: ~1.6e7 s when observing latencies) land in the edge buckets. The
#: index space is therefore fixed at 257 possible bins regardless of
#: how many observations arrive.
_MIN_BUCKET = -40 * _BUCKETS_PER_OCTAVE
_MAX_BUCKET = 24 * _BUCKETS_PER_OCTAVE


def bucket_index(value: float) -> int:
    """Fixed log-bucket index of a positive value (clamped)."""
    idx = math.ceil(_BUCKETS_PER_OCTAVE * math.log2(value))
    if idx < _MIN_BUCKET:
        return _MIN_BUCKET
    if idx > _MAX_BUCKET:
        return _MAX_BUCKET
    return idx


def bucket_upper_bound(index: int) -> float:
    """Inclusive upper bound of a log bucket (``2**(index/4)``)."""
    return 2.0 ** (index / _BUCKETS_PER_OCTAVE)


def bucket_midpoint(index: int) -> float:
    """Geometric midpoint of a log bucket (the quantile representative)."""
    return 2.0 ** ((index - 0.5) / _BUCKETS_PER_OCTAVE)


class Histogram:
    """Distribution of observed values (latencies, durations).

    Count/total/min/max stay **exact**; the distribution body is held in
    fixed log-spaced buckets (four per octave), so memory is bounded by
    the 257-bin index space no matter how many observations arrive — a
    week-long campaign costs the same bytes as a unit test. Quantiles
    are read from the bucket boundaries with bounded (~±9%) relative
    error; two histograms merge **losslessly** (bucket counts add).
    Values ``<= 0`` (a generic histogram may see them) share one
    dedicated bucket and resolve to the exact ``min`` in quantiles.
    """

    __slots__ = ("count", "total", "min", "max", "_buckets", "_nonpositive")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._buckets: dict[int, int] = {}
        self._nonpositive = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0.0:
            idx = bucket_index(value)
            self._buckets[idx] = self._buckets.get(idx, 0) + 1
        else:
            self._nonpositive += 1

    def observe_many(self, values: Any) -> None:
        """Observe a batch of values in one vectorized pass.

        The bulk API for hot paths that buffer samples locally (e.g.
        per-block timings in the fused engine) instead of paying a
        Python-level :meth:`observe` per sample: binning happens with
        one ``log2`` over the whole array. The resulting bucket counts
        are identical to per-value observation; ``total`` may differ in
        float rounding order (as any summation reordering does).
        """
        import numpy as np

        arr = np.asarray(values, dtype=float)
        n = int(arr.size)
        if n == 0:
            return
        self.count += n
        self.total += float(arr.sum())
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))
        pos = arr[arr > 0.0]
        self._nonpositive += n - int(pos.size)
        if pos.size:
            idx = np.clip(
                np.ceil(_BUCKETS_PER_OCTAVE * np.log2(pos)),
                _MIN_BUCKET,
                _MAX_BUCKET,
            ).astype(np.int64)
            uniq, counts = np.unique(idx, return_counts=True)
            for i, c in zip(uniq.tolist(), counts.tolist()):
                self._buckets[i] = self._buckets.get(i, 0) + c

    def quantile(self, q: float) -> float:
        """Approximate quantile from the log buckets (±~9% relative).

        The rank convention matches the previous exact-sample
        implementation (``round(q * (count - 1))``); the returned value
        is the geometric midpoint of the bucket holding that rank,
        clamped into the exact ``[min, max]`` envelope.
        """
        if self.count == 0:
            raise ValueError("empty histogram")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0,1], got {q}")
        rank = min(self.count - 1, int(round(q * (self.count - 1))))
        cumulative = self._nonpositive
        if rank < cumulative:
            return self.min
        for idx in sorted(self._buckets):
            cumulative += self._buckets[idx]
            if rank < cumulative:
                return min(max(bucket_midpoint(idx), self.min), self.max)
        return self.max  # pragma: no cover - counts always sum to count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def state(self) -> dict[str, Any]:
        """Mergeable full state (summary plus the bucket counts).

        Unlike :meth:`summary`, the output can be folded into another
        histogram with :meth:`merge_state` **losslessly** — the
        transport used to ship worker-process metrics back to the
        parent registry.
        """
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self._buckets.items())},
            "nonpositive": self._nonpositive,
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Exact statistics add exactly; log-bucket counts add bin-by-bin
        (no information loss — the merged histogram is identical to one
        that observed every value itself, bucket-wise). Legacy states
        carrying raw ``samples`` re-observe them for compatibility.
        """
        count = int(state.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(state.get("total", 0.0))
        self.min = min(self.min, float(state.get("min", float("inf"))))
        self.max = max(self.max, float(state.get("max", float("-inf"))))
        if "buckets" in state or "nonpositive" in state:
            for key, n in (state.get("buckets") or {}).items():
                idx = int(key)
                self._buckets[idx] = self._buckets.get(idx, 0) + int(n)
            self._nonpositive += int(state.get("nonpositive", 0))
        else:  # legacy sample-buffer dump: bin the retained samples
            for v in state.get("samples", ()):
                v = float(v)
                if v > 0.0:
                    idx = bucket_index(v)
                    self._buckets[idx] = self._buckets.get(idx, 0) + 1
                else:
                    self._nonpositive += 1

    def summary(self) -> dict[str, float]:
        """JSON-ready summary (the snapshot representation)."""
        if self.count == 0:
            return {"count": 0, "total": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instruments with a disabled mode that costs one branch."""

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- switch ----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- instrument access (creates on demand) ---------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter())
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge())
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram())
        return h

    # -- recording (no-ops when disabled) --------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        if not self._enabled:
            return
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        if not self._enabled:
            return
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if not self._enabled:
            return
        self.histogram(name).observe(value)

    def observe_many(self, name: str, values: Any) -> None:
        if not self._enabled:
            return
        self.histogram(name).observe_many(values)

    # -- views -----------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time plain-dict view of every instrument."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: h.summary() for k, h in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    # -- cross-process transport -----------------------------------------------

    def dump_state(self) -> dict[str, Any]:
        """Full mergeable state (picklable / JSON-ready).

        The counterpart of :meth:`merge_state`: a worker process calls
        ``dump_state()`` on its (fresh) registry and ships the dict back
        with its results; the parent folds it in, so campaign metrics
        stay complete regardless of where each run executed.
        """
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: h.state() for k, h in sorted(self._histograms.items())
                },
            }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a :meth:`dump_state` dict (e.g. from a worker) into this
        registry: counters add, gauges last-write-wins, histograms pool.

        No-op while disabled, mirroring the recording methods.
        """
        if not self._enabled:
            return
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, hist_state in state.get("histograms", {}).items():
            self.histogram(name).merge_state(hist_state)

    def reset(self) -> None:
        """Drop every instrument (a fresh measurement window)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: Process-wide default registry used by all repro instrumentation.
_DEFAULT = MetricsRegistry(enabled=True)


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _DEFAULT
