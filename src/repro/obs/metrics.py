"""Process-wide metrics registry: named counters, gauges, histograms.

The pipeline's long-lived quantities — datapoints sampled, runs
simulated, fail events, predictions served, per-model fit/predict
latencies — accumulate here. The registry is append-cheap by design:

- instruments are created lazily on first use and kept in dicts;
- every recording call (``inc`` / ``set_gauge`` / ``observe``) starts
  with one ``enabled`` check and returns immediately when the registry
  is disabled, so instrumented hot paths (one counter bump per FMC
  datapoint) cost a single attribute read when observability is off;
- ``snapshot()`` produces a plain-dict view (JSON-ready) without
  stopping collection, and ``reset()`` starts a fresh window.

The process-wide default registry is reached via :func:`get_metrics`;
:class:`MetricsRegistry` instances can also be created standalone for
tests or isolated components.
"""

from __future__ import annotations

import json
import threading
from typing import Any


class Counter:
    """Monotonically-increasing count (events, rows, failures)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counters only increase, got {n}")
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value (sizes, thresholds)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Distribution of observed values (latencies, durations).

    Keeps exact summary statistics (count/total/min/max) plus a bounded
    sample buffer for quantiles; past ``max_samples`` observations the
    buffer stops growing but the summary stays exact.
    """

    __slots__ = ("count", "total", "min", "max", "_samples", "_max_samples")

    def __init__(self, max_samples: int = 2048) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._max_samples = max_samples

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self._max_samples:
            self._samples.append(value)

    def quantile(self, q: float) -> float:
        """Empirical quantile over the retained samples."""
        if not self._samples:
            raise ValueError("empty histogram")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0,1], got {q}")
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[idx]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def state(self) -> dict[str, Any]:
        """Mergeable full state (summary plus the retained samples).

        Unlike :meth:`summary`, the output can be folded into another
        histogram with :meth:`merge_state` without losing the sample
        buffer — the transport used to ship worker-process metrics back
        to the parent registry.
        """
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self._samples),
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Summary statistics stay exact; the sample buffer absorbs the
        other's samples until ``max_samples`` is reached (quantiles
        become approximate past that point, as with a single histogram).
        """
        count = int(state.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(state.get("total", 0.0))
        self.min = min(self.min, float(state.get("min", float("inf"))))
        self.max = max(self.max, float(state.get("max", float("-inf"))))
        room = self._max_samples - len(self._samples)
        if room > 0:
            self._samples.extend(
                float(v) for v in list(state.get("samples", ()))[:room]
            )

    def summary(self) -> dict[str, float]:
        """JSON-ready summary (the snapshot representation)."""
        if self.count == 0:
            return {"count": 0, "total": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instruments with a disabled mode that costs one branch."""

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- switch ----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- instrument access (creates on demand) ---------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter())
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge())
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram())
        return h

    # -- recording (no-ops when disabled) --------------------------------------

    def inc(self, name: str, n: float = 1.0) -> None:
        if not self._enabled:
            return
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        if not self._enabled:
            return
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if not self._enabled:
            return
        self.histogram(name).observe(value)

    # -- views -----------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time plain-dict view of every instrument."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: h.summary() for k, h in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)

    # -- cross-process transport -----------------------------------------------

    def dump_state(self) -> dict[str, Any]:
        """Full mergeable state (picklable / JSON-ready).

        The counterpart of :meth:`merge_state`: a worker process calls
        ``dump_state()`` on its (fresh) registry and ships the dict back
        with its results; the parent folds it in, so campaign metrics
        stay complete regardless of where each run executed.
        """
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: h.state() for k, h in sorted(self._histograms.items())
                },
            }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a :meth:`dump_state` dict (e.g. from a worker) into this
        registry: counters add, gauges last-write-wins, histograms pool.

        No-op while disabled, mirroring the recording methods.
        """
        if not self._enabled:
            return
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, hist_state in state.get("histograms", {}).items():
            self.histogram(name).merge_state(hist_state)

    def reset(self) -> None:
        """Drop every instrument (a fresh measurement window)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: Process-wide default registry used by all repro instrumentation.
_DEFAULT = MetricsRegistry(enabled=True)


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _DEFAULT
