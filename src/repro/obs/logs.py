"""Structured logging for the ``repro`` logger hierarchy.

Every module logs through a child of the ``repro`` root logger
(:func:`get_logger`), and events carry their payload as ``key=value``
pairs built with :func:`kv`, so a grep for ``event=aggregate`` or
``model=m5p`` works on any log capture::

    INFO repro.core.framework aggregate rows_in=7831 rows_out=412 features=30

:func:`configure_logging` is the one switch: verbosity 0 shows only
warnings (the library default — phases stay silent), 1 shows per-phase
INFO events (the CLI's ``-v``), 2 opens the DEBUG firehose (``-vv``,
per-datapoint sampling events included). Re-configuring replaces the
previously-installed handler, so repeated CLI invocations in one
process never double-log.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, TextIO

#: Name of the hierarchy root; every repro logger is ``repro.<module>``.
ROOT_LOGGER = "repro"

#: Marker attribute identifying handlers installed by configure_logging.
_HANDLER_MARK = "_f2pm_obs_handler"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``get_logger("core.framework")``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def kv(**fields: Any) -> str:
    """Render fields as ``key=value`` pairs, space-separated.

    Floats use compact ``%.6g`` form; strings containing whitespace are
    quoted so the line stays splittable on spaces.
    """
    parts = []
    for key, value in fields.items():
        if isinstance(value, float):
            text = f"{value:.6g}"
        else:
            text = str(value)
        if " " in text or text == "":
            text = f'"{text}"'
        parts.append(f"{key}={text}")
    return " ".join(parts)


class KVFormatter(logging.Formatter):
    """``LEVEL logger message`` — message already carries its kv payload."""

    def __init__(self) -> None:
        super().__init__(fmt="%(levelname)s %(name)s %(message)s")


def verbosity_to_level(verbosity: int) -> int:
    """Map a CLI ``-v`` count to a logging level."""
    if verbosity <= 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(
    verbosity: int = 0, stream: "TextIO | None" = None
) -> logging.Logger:
    """(Re)configure the ``repro`` logger hierarchy.

    Installs a stream handler with :class:`KVFormatter` on the root
    ``repro`` logger, replacing any handler from a previous call, and
    sets the level from *verbosity* (0 → WARNING, 1 → INFO, ≥2 → DEBUG).
    Returns the configured root logger.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(KVFormatter())
    setattr(handler, _HANDLER_MARK, True)
    logger.addHandler(handler)
    logger.setLevel(verbosity_to_level(verbosity))
    logger.propagate = False
    return logger
