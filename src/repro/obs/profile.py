"""Per-stage profiling whose own cost is measured, not assumed.

:class:`StageProfiler` wraps pipeline stages (``with profiler.stage(
"controller.predict"): ...``) and hot-loop samples
(:meth:`StageProfiler.record`) into wall-clock **and** CPU latency
histograms in the metrics registry — which, being log-bucketed
(:class:`repro.obs.metrics.Histogram`), hold a hot path's full latency
distribution in bounded memory.

The profiler keeps itself honest two ways:

- at construction it **calibrates** the cost of one instrumented
  entry/exit pair by timing empty stages, exposing the estimate as
  ``entry_cost_s``;
- every stage exit additionally measures the bookkeeping it just did
  (the clock reads and histogram updates) with one extra clock read,
  accumulating the sum into the ``profile.overhead_seconds_total``
  counter — so ``overhead_fraction(run_wall_seconds)`` reports how much
  of a run the profiler itself consumed, from data, not assumption.

The committed ``benchmarks/BENCH_obs_overhead.json`` asserts the full
telemetry stack (metrics + spans + bus + profiler) under 5% on a fused
campaign; this module is what makes that number auditable.
"""

from __future__ import annotations

import time
from typing import Any

from repro.obs.metrics import MetricsRegistry, get_metrics

#: Metric name accumulating the profiler's self-measured bookkeeping cost.
OVERHEAD_COUNTER = "profile.overhead_seconds_total"


class _Stage:
    """One open profiled stage (context manager)."""

    __slots__ = ("_profiler", "name", "_wall0", "_cpu0")

    def __init__(self, profiler: "StageProfiler", name: str) -> None:
        self._profiler = profiler
        self.name = name
        self._wall0 = 0.0
        self._cpu0 = 0.0

    def __enter__(self) -> "_Stage":
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        wall1 = time.perf_counter()
        cpu1 = time.process_time()
        p = self._profiler
        registry = p._metrics
        registry.observe(f"profile.{self.name}.wall_seconds", wall1 - self._wall0)
        registry.observe(f"profile.{self.name}.cpu_seconds", cpu1 - self._cpu0)
        # Self-measurement: one more clock read prices the bookkeeping
        # this exit just performed, plus the calibrated entry cost.
        done = time.perf_counter()
        registry.inc(OVERHEAD_COUNTER, (done - wall1) + p.entry_cost_s)


class _NullStage:
    """No-op stage handed out while profiling is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_STAGE = _NullStage()


class StageProfiler:
    """Wall+CPU per-stage profiler bound to a metrics registry.

    Enabled-ness follows the registry: when metrics are off (``--no-obs``,
    ``F2PM_OBS=0``), ``stage()`` returns a shared no-op and ``record()``
    returns after one branch — the hot paths pay nothing measurable.
    """

    def __init__(
        self,
        metrics: "MetricsRegistry | None" = None,
        calibration_reps: int = 256,
    ) -> None:
        self._metrics = metrics if metrics is not None else get_metrics()
        self.entry_cost_s = 0.0  # calibration stages price themselves at zero
        self.entry_cost_s = self._calibrate(calibration_reps)

    def _calibrate(self, reps: int) -> float:
        """Median-of-three cost of one empty ``stage()`` entry/exit pair."""
        if reps < 1:
            return 0.0
        estimates = []
        scratch = MetricsRegistry(enabled=True)
        saved, self._metrics = self._metrics, scratch
        try:
            for _ in range(3):
                t0 = time.perf_counter()
                for _ in range(reps):
                    with _Stage(self, "calibration"):
                        pass
                estimates.append((time.perf_counter() - t0) / reps)
        finally:
            self._metrics = saved
        return sorted(estimates)[1]

    @property
    def enabled(self) -> bool:
        return self._metrics.enabled

    # -- recording -------------------------------------------------------------

    def stage(self, name: str) -> "_Stage | _NullStage":
        """Open a profiled stage: ``with profiler.stage("predict"): ...``."""
        if not self._metrics.enabled:
            return _NULL_STAGE
        return _Stage(self, name)

    def record(self, name: str, wall_seconds: float, cpu_seconds: "float | None" = None) -> None:
        """Record one externally-timed sample (hot-loop sampling API).

        Tight loops cannot afford a context manager per iteration; they
        time every K-th iteration themselves with two ``perf_counter``
        reads and hand the sample here. The bookkeeping cost is priced
        into the overhead counter exactly like :meth:`stage`.
        """
        registry = self._metrics
        if not registry.enabled:
            return
        t0 = time.perf_counter()
        registry.observe(f"profile.{name}.wall_seconds", wall_seconds)
        if cpu_seconds is not None:
            registry.observe(f"profile.{name}.cpu_seconds", cpu_seconds)
        done = time.perf_counter()
        # Two clock reads by the caller ≈ one calibrated entry pair.
        registry.inc(OVERHEAD_COUNTER, (done - t0) + self.entry_cost_s)

    # -- reporting -------------------------------------------------------------

    @property
    def overhead_seconds(self) -> float:
        """Self-measured total bookkeeping cost so far (seconds)."""
        return self._metrics.counter(OVERHEAD_COUNTER).value

    def overhead_fraction(self, total_wall_seconds: float) -> float:
        """Profiler cost as a fraction of a measured run's wall time."""
        if total_wall_seconds <= 0:
            return 0.0
        return self.overhead_seconds / total_wall_seconds

    def report(self) -> dict[str, Any]:
        """JSON-ready profile: per-stage summaries plus the self cost."""
        snap = self._metrics.snapshot()
        stages = {
            name[len("profile.") :]: summary
            for name, summary in snap.get("histograms", {}).items()
            if name.startswith("profile.")
        }
        return {
            "stages": stages,
            "overhead_seconds": self.overhead_seconds,
            "entry_cost_s": self.entry_cost_s,
        }


#: Process-wide default profiler (shares the default metrics registry).
_DEFAULT: "StageProfiler | None" = None


def get_profiler() -> StageProfiler:
    """The process-wide stage profiler (created, and calibrated, lazily)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = StageProfiler()
    return _DEFAULT
