"""``repro.obs`` — observability for the F2PM pipeline.

Three cooperating primitives plus a packaging layer:

:mod:`repro.obs.trace`
    Nestable :func:`span` context managers building a per-run span tree
    (durations, counters, attributes), exportable as JSON or text.
:mod:`repro.obs.metrics`
    Process-wide named counters / gauges / histograms with
    ``snapshot()`` and JSON export; one-branch overhead when disabled.
:mod:`repro.obs.logs`
    The ``repro`` logger hierarchy, ``configure_logging(verbosity)``
    and ``key=value`` event formatting.
:mod:`repro.obs.manifest`
    Run manifests — config + seeds + version + trace + metrics in one
    JSON document persisted next to every output.
:mod:`repro.obs.telemetry`
    Live time-series bus — bounded ring-buffer series + events the
    online layers emit into while running, with streaming JSONL and
    Prometheus-style exporters (``f2pm top`` watches the stream).
:mod:`repro.obs.profile`
    Per-stage wall/CPU profiler whose own cost is self-measured
    (log-bucketed latency histograms on the hot paths).

The global switch
-----------------

:func:`enable` / :func:`disable` flip tracing and metrics together;
both default to **on** (the instruments are cheap: a handful of spans
per pipeline phase, one counter bump per datapoint). Set the
environment variable ``F2PM_OBS=0`` to start the process with
observability off; the instrumented code then pays a single attribute
check per call site.
"""

from __future__ import annotations

import os

from repro.obs.logs import (
    KVFormatter,
    configure_logging,
    get_logger,
    kv,
    verbosity_to_level,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    jsonable,
    manifest_path_for,
    read_manifest,
    write_manifest,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, get_metrics
from repro.obs.profile import StageProfiler, get_profiler
from repro.obs.telemetry import (
    JsonlExporter,
    TelemetryBus,
    TimeSeries,
    get_telemetry,
    prometheus_text,
    read_jsonl,
)
from repro.obs.trace import NULL_SPAN, NullSpan, Span, Tracer, get_tracer, span

__all__ = [
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "Tracer",
    "get_tracer",
    "span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "configure_logging",
    "get_logger",
    "kv",
    "KVFormatter",
    "verbosity_to_level",
    "TelemetryBus",
    "TimeSeries",
    "JsonlExporter",
    "get_telemetry",
    "prometheus_text",
    "read_jsonl",
    "StageProfiler",
    "get_profiler",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "jsonable",
    "manifest_path_for",
    "read_manifest",
    "write_manifest",
    "enable",
    "disable",
    "enabled",
    "reset",
]


def enable() -> None:
    """Turn tracing, metrics and telemetry collection on (the default)."""
    get_tracer().enable()
    get_metrics().enable()
    get_telemetry().enable()


def disable() -> None:
    """Turn tracing, metrics and telemetry off; instrumented code becomes
    one-branch no-ops (the profiler follows the metrics switch)."""
    get_tracer().disable()
    get_metrics().disable()
    get_telemetry().disable()


def enabled() -> bool:
    """True when any of tracing / metrics / telemetry collection is on."""
    return get_tracer().enabled or get_metrics().enabled or get_telemetry().enabled


def reset() -> None:
    """Clear all recorded spans, metrics and telemetry series (a fresh
    measurement window)."""
    get_tracer().reset()
    get_metrics().reset()
    get_telemetry().reset()


if os.environ.get("F2PM_OBS", "").strip().lower() in {"0", "off", "false", "no"}:
    disable()
