"""Structured tracing: nestable spans with durations and attributes.

A :class:`Span` is one timed operation; entering a span inside another
produces a tree mirroring the pipeline's call structure, e.g. for one
F2PM execution::

    f2pm.run                                    1.63s
      aggregate                                 0.21s rows_in=7831 rows_out=412
      select                                    0.38s lambda=1e+06 n_selected=6
      split                                     0.01s
      evaluate model=m5p feature_set=all        0.52s
        train                                   0.49s
        validate                                0.03s

Spans are produced through a :class:`Tracer`, which keeps the tree and
the currently-open stack. The module-level default tracer (used by all
of :mod:`repro`) is reached via :func:`get_tracer` / :func:`span`; when
tracing is disabled, :func:`span` hands back the shared
:data:`NULL_SPAN` whose every operation is a no-op, so instrumented code
pays one attribute check and nothing else.

Span trees export to JSON (``Tracer.to_dict`` / ``Span.to_dict``, loss-
lessly reloadable via :meth:`Span.from_dict`) and to an indented text
tree (``render``) for terminal inspection (``f2pm obs trace.json``).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Iterator


def _fmt_duration(seconds: float) -> str:
    """Human-scale duration: ns/us/ms/s picked by magnitude."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.1f}us"
    return f"{seconds * 1e9:.0f}ns"


def _fmt_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class Span:
    """One timed operation: name, wall-clock duration, attributes, children.

    A span may be used standalone (``Timer`` is built on one) or through
    a :class:`Tracer`, which links it into the span tree on ``__enter__``.
    ``duration`` reads live while the span is running and freezes at
    ``finish()``; re-starting a span resets the clock (restartable-timer
    semantics).
    """

    __slots__ = ("name", "attributes", "children", "_start", "_elapsed", "_tracer")

    def __init__(
        self,
        name: str,
        attributes: "dict[str, Any] | None" = None,
        _tracer: "Tracer | None" = None,
    ) -> None:
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.children: list[Span] = []
        self._start: "float | None" = None
        self._elapsed: "float | None" = None
        self._tracer = _tracer

    # -- clock -----------------------------------------------------------------

    def start(self) -> "Span":
        """Start (or restart) the span's clock."""
        self._elapsed = None
        self._start = time.perf_counter()
        return self

    def finish(self) -> "Span":
        """Freeze the duration."""
        if self._start is None:
            raise RuntimeError(f"span {self.name!r} was never started")
        self._elapsed = time.perf_counter() - self._start
        return self

    @property
    def running(self) -> bool:
        """True between ``start()`` and ``finish()``."""
        return self._start is not None and self._elapsed is None

    @property
    def duration(self) -> float:
        """Elapsed seconds (live while running, frozen after finish)."""
        if self._start is None:
            raise RuntimeError(f"span {self.name!r} was never started")
        if self._elapsed is None:
            return time.perf_counter() - self._start
        return self._elapsed

    # -- structure -------------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach key=value attributes (chains)."""
        self.attributes.update(attributes)
        return self

    def child(self, name: str, **attributes: Any) -> "Span":
        """Create an (unstarted) child span attached to this one."""
        node = Span(name, attributes, _tracer=self._tracer)
        self.children.append(node)
        return node

    def walk(self) -> "Iterator[Span]":
        """Depth-first iteration over this span and all descendants."""
        yield self
        for c in self.children:
            yield from c.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name, depth-first."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.finish()
        if self._tracer is not None:
            self._tracer._pop(self)

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation of this subtree."""
        return {
            "name": self.name,
            "duration_s": self.duration if self._start is not None else None,
            "attributes": dict(self.attributes),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a (frozen) span tree from :meth:`to_dict` output."""
        node = cls(str(data["name"]), dict(data.get("attributes") or {}))
        duration = data.get("duration_s")
        if duration is not None:
            node._start = 0.0
            node._elapsed = float(duration)
        node.children = [cls.from_dict(c) for c in data.get("children") or []]
        return node

    def render(self, indent: int = 0) -> str:
        """Indented text tree of this subtree."""
        dur = _fmt_duration(self.duration) if self._start is not None else "-"
        attrs = " ".join(
            f"{k}={_fmt_attr(v)}" for k, v in self.attributes.items()
        )
        line = f"{'  ' * indent}{self.name:<{max(1, 40 - 2 * indent)}} {dur:>9}"
        if attrs:
            line = f"{line}  {attrs}"
        return "\n".join([line, *(c.render(indent + 1) for c in self.children)])

    def __repr__(self) -> str:
        state = (
            f"{self.duration:.6f}s" if self._start is not None else "unstarted"
        )
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class NullSpan:
    """Do-nothing stand-in returned while tracing is disabled.

    Supports the whole :class:`Span` surface so instrumented code never
    branches on the tracing switch; every method returns ``self`` or a
    neutral value.
    """

    __slots__ = ()

    name = "null"
    attributes: dict[str, Any] = {}
    children: list = []
    running = False
    duration = 0.0

    def start(self) -> "NullSpan":
        return self

    def finish(self) -> "NullSpan":
        return self

    def set(self, **attributes: Any) -> "NullSpan":
        return self

    def child(self, name: str, **attributes: Any) -> "NullSpan":
        return self

    def walk(self) -> Iterator[Any]:
        return iter(())

    def find(self, name: str) -> None:
        return None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def to_dict(self) -> dict[str, Any]:
        return {}

    def render(self, indent: int = 0) -> str:
        return ""

    def __repr__(self) -> str:
        return "NullSpan()"

    def __bool__(self) -> bool:
        return False


#: The shared no-op span (falsy, so ``if span:`` skips disabled tracing).
NULL_SPAN = NullSpan()


class Tracer:
    """Collects span trees; one stack of open spans per thread."""

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- switch ----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- span production -------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attributes: Any) -> "Span | NullSpan":
        """A new span, linked into the tree when entered as a context."""
        if not self._enabled:
            return NULL_SPAN
        return Span(name, attributes, _tracer=self)

    def current(self) -> "Span | None":
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def attach(self, span: Span) -> None:
        """Adopt an externally-built (finished) span tree.

        Used to graft a worker process's exported spans (rebuilt with
        :meth:`Span.from_dict`) into this tracer's tree: the subtree
        becomes a child of the innermost open span on this thread, or a
        new root when none is open. No-op while tracing is disabled.
        """
        if not self._enabled:
            return
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    # -- inspection / export ---------------------------------------------------

    @property
    def roots(self) -> list[Span]:
        return list(self._roots)

    def reset(self) -> None:
        """Drop every recorded span (open spans stay linked to callers)."""
        with self._lock:
            self._roots.clear()
        self._local = threading.local()

    def to_dict(self) -> dict[str, Any]:
        return {"spans": [s.to_dict() for s in self._roots]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Indented text rendering of every recorded tree."""
        return "\n".join(s.render() for s in self._roots)


#: Process-wide default tracer used by all repro instrumentation.
_DEFAULT = Tracer(enabled=True)


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _DEFAULT


def span(name: str, **attributes: Any) -> "Span | NullSpan":
    """Open a span on the default tracer (``with span("phase"): ...``)."""
    return _DEFAULT.span(name, **attributes)
