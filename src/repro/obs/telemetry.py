"""Live telemetry: bounded-memory time series, events, and exporters.

The post-hoc observability primitives (:mod:`repro.obs.trace`,
:mod:`repro.obs.metrics`) answer *where did the time go* after a run
ends. This module is the **streaming** substrate the online layers emit
into while they run: the rejuvenation controller, the stream sanitizer,
the fused simulation engine and the parallel workers all publish named
``(t, value)`` points and discrete events to the process-wide
:class:`TelemetryBus`, and exporters fan the stream out to files an
external process can watch (``f2pm top``).

Memory is bounded by construction:

- every series is a :class:`TimeSeries` — a fixed-capacity buffer with
  a **deterministic decimating downsample**: when the buffer fills, every
  other retained point is dropped and the recording stride doubles, so
  an arbitrarily long emission sequence keeps full-horizon coverage at
  logarithmically decreasing resolution and never exceeds ``capacity``
  points. The retained set is a pure function of the emission sequence
  (no clocks, no randomness), which is what lets parallel workers ship
  their buffers back and merge bit-identically in task-index order.
- the event log keeps the most recent ``events_capacity`` events plus an
  exact total count.

Exporters implement the two-method sink protocol (``point`` / ``event``)
and attach with :meth:`TelemetryBus.add_sink`:

:class:`JsonlExporter`
    streaming JSONL, one line per point/event, line-buffered so an
    external process can ``tail -f`` it while the run is live
    (``--telemetry-jsonl``).
:func:`prometheus_text`
    Prometheus-style text exposition *snapshot* of the metrics registry
    plus the bus's last-seen values (``--telemetry-prom``), written
    atomically at command end.
"""

from __future__ import annotations

import json
import re
import threading
from pathlib import Path
from typing import Any, Iterable, TextIO

#: Schema tag written as the first line of every JSONL telemetry stream.
JSONL_SCHEMA = "f2pm.telemetry/1"


class TimeSeries:
    """Fixed-capacity ``(t, value)`` buffer with deterministic decimation.

    Points are recorded every ``stride`` emissions (stride starts at 1).
    When the buffer reaches ``capacity``, every other retained point is
    dropped (even indices kept) and the stride doubles — so the series
    always spans the full emission horizon and never exceeds
    ``capacity`` points, at resolution that halves each time the horizon
    outgrows the buffer. ``last_t``/``last_value`` always track the most
    recent emission exactly, regardless of stride.
    """

    __slots__ = (
        "name",
        "capacity",
        "stride",
        "total",
        "last_t",
        "last_value",
        "_ts",
        "_vs",
        "_skip",
    )

    def __init__(self, name: str, capacity: int = 512) -> None:
        if capacity < 8 or capacity % 2:
            raise ValueError(f"capacity must be an even number >= 8, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.stride = 1  # record every stride-th emission
        self.total = 0  # exact emission count
        self.last_t: float | None = None
        self.last_value: float | None = None
        self._ts: list[float] = []
        self._vs: list[float] = []
        self._skip = 0  # emissions to skip before the next record

    def __len__(self) -> int:
        return len(self._ts)

    def emit(self, t: float, value: float) -> None:
        """Record one observation (O(1) amortized, bounded memory)."""
        t = float(t)
        value = float(value)
        self.total += 1
        self.last_t = t
        self.last_value = value
        if self._skip > 0:
            self._skip -= 1
            return
        self._ts.append(t)
        self._vs.append(value)
        if len(self._ts) >= self.capacity:
            # Deterministic decimation: keep even indices, double stride.
            self._ts = self._ts[::2]
            self._vs = self._vs[::2]
            self.stride *= 2
        self._skip = self.stride - 1

    @property
    def points(self) -> list[tuple[float, float]]:
        """The retained ``(t, value)`` points, oldest first."""
        return list(zip(self._ts, self._vs))

    @property
    def values(self) -> list[float]:
        return list(self._vs)

    @property
    def times(self) -> list[float]:
        return list(self._ts)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of this series."""
        return {
            "name": self.name,
            "capacity": self.capacity,
            "stride": self.stride,
            "total": self.total,
            "last": (
                None if self.last_t is None else [self.last_t, self.last_value]
            ),
            "points": [[t, v] for t, v in zip(self._ts, self._vs)],
        }

    def state(self) -> dict[str, Any]:
        """Mergeable transport form (same layout as :meth:`snapshot`)."""
        return self.snapshot()

    def merge_state(self, state: dict[str, Any]) -> None:
        """Replay another series' retained points into this one.

        Replaying through :meth:`emit` keeps the decimation invariant; a
        lossless dump (``stride == 1``, the common case for short-lived
        worker tasks) reproduces the exact emission sequence, so merging
        worker buffers in task-index order is bit-identical to serial
        emission. Emissions the source decimated away stay counted in
        ``total`` but cannot be replayed.
        """
        points = state.get("points") or []
        for t, v in points:
            self.emit(t, v)
        dropped = int(state.get("total", len(points))) - len(points)
        if dropped > 0:
            self.total += dropped
            last = state.get("last")
            if last is not None:
                self.last_t, self.last_value = float(last[0]), float(last[1])


class TelemetryBus:
    """Named :class:`TimeSeries` plus a bounded event log, with sinks.

    The process-wide default bus (:func:`get_telemetry`) is enabled and
    disabled together with tracing/metrics by :func:`repro.obs.enable` /
    ``disable``; while disabled, ``emit``/``event`` cost one branch.
    """

    def __init__(
        self,
        enabled: bool = True,
        series_capacity: int = 512,
        events_capacity: int = 256,
    ) -> None:
        self._enabled = enabled
        self.series_capacity = series_capacity
        self.events_capacity = events_capacity
        self._lock = threading.Lock()
        self._series: dict[str, TimeSeries] = {}
        self._events: list[dict[str, Any]] = []
        self._events_total = 0
        self._sinks: list[Any] = []

    # -- switch ----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- emission --------------------------------------------------------------

    def series(self, name: str) -> TimeSeries:
        s = self._series.get(name)
        if s is None:
            with self._lock:
                s = self._series.setdefault(
                    name, TimeSeries(name, self.series_capacity)
                )
        return s

    def emit(self, name: str, t: float, value: float) -> None:
        """Publish one point to a named series (no-op while disabled)."""
        if not self._enabled:
            return
        self.series(name).emit(t, value)
        for sink in self._sinks:
            sink.point(name, t, value)

    def event(self, t: float, kind: str, **attrs: Any) -> None:
        """Publish one discrete event (no-op while disabled)."""
        if not self._enabled:
            return
        ev = {"t": float(t), "event": str(kind), **attrs}
        self._events_total += 1
        self._events.append(ev)
        if len(self._events) > self.events_capacity:
            del self._events[0]
        for sink in self._sinks:
            sink.event(ev)

    # -- sinks -----------------------------------------------------------------

    def add_sink(self, sink: Any) -> None:
        """Attach a streaming sink (``point(name, t, v)`` / ``event(ev)``)."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Any) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    # -- views -----------------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._series)

    @property
    def events(self) -> list[dict[str, Any]]:
        """The retained (most recent) events, oldest first."""
        return list(self._events)

    @property
    def events_total(self) -> int:
        return self._events_total

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view: every series plus the retained events."""
        with self._lock:
            return {
                "series": {
                    k: s.snapshot() for k, s in sorted(self._series.items())
                },
                "events": list(self._events),
                "events_total": self._events_total,
            }

    # -- cross-process transport -----------------------------------------------

    def dump_state(self) -> dict[str, Any]:
        """Full mergeable state (picklable), the worker-side export."""
        return self.snapshot()

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a worker's :meth:`dump_state` into this bus.

        Points replay through :meth:`emit` (so attached sinks see them
        too) in the order the worker recorded them; callers merge
        workers in task-index order, making the merged bus deterministic
        for any worker count. No-op while disabled.
        """
        if not self._enabled:
            return
        for name, series_state in (state.get("series") or {}).items():
            points = series_state.get("points") or []
            for t, v in points:
                self.emit(name, t, v)
            dropped = int(series_state.get("total", len(points))) - len(points)
            if dropped > 0:
                series = self.series(name)
                series.total += dropped
                last = series_state.get("last")
                if last is not None:
                    series.last_t = float(last[0])
                    series.last_value = float(last[1])
        for ev in state.get("events") or []:
            attrs = {k: v for k, v in ev.items() if k not in ("t", "event")}
            self.event(ev["t"], ev["event"], **attrs)

    def reset(self) -> None:
        """Drop every series and event (sinks stay attached)."""
        with self._lock:
            self._series.clear()
            self._events.clear()
            self._events_total = 0


#: Process-wide default bus used by all streaming instrumentation.
_DEFAULT = TelemetryBus(enabled=True)


def get_telemetry() -> TelemetryBus:
    """The process-wide telemetry bus."""
    return _DEFAULT


# -- JSONL streaming exporter ------------------------------------------------------


class JsonlExporter:
    """Streaming JSONL sink: one line per point/event, tail-friendly.

    The file is opened line-buffered and every record is one complete
    ``\\n``-terminated JSON object, so an external process (``f2pm top
    --follow``) can consume the stream while the run is live, and a
    killed run leaves at most one torn final line — which
    :func:`read_jsonl` skips.
    """

    def __init__(self, path: "str | Path", meta: "dict[str, Any] | None" = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: TextIO = self.path.open("w", buffering=1, encoding="utf-8")
        header = {"kind": "meta", "schema": JSONL_SCHEMA, **(meta or {})}
        self._write(header)

    def _write(self, record: dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def point(self, name: str, t: float, value: float) -> None:
        self._write({"kind": "point", "series": name, "t": t, "v": value})

    def event(self, ev: dict[str, Any]) -> None:
        self._write({"kind": "event", **ev})

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl(path: "str | Path") -> list[dict[str, Any]]:
    """Parse a telemetry JSONL stream, skipping any torn final line.

    A stream written by :class:`JsonlExporter` is append-only; a crash
    mid-write leaves at most one incomplete last line, which is dropped
    (every complete line is still valid JSON).
    """
    records: list[dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8", errors="replace")
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            continue  # torn tail (or foreign line); skip
        if isinstance(rec, dict):
            records.append(rec)
    return records


# -- Prometheus-style text exposition ----------------------------------------------

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric/series name into the Prometheus charset."""
    cleaned = _PROM_NAME_RE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"f2pm_{cleaned}"


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return format(float(value), ".17g")


def prometheus_text(metrics=None, bus: "TelemetryBus | None" = None) -> str:
    """Prometheus text-exposition snapshot of the registry and the bus.

    Counters and gauges export directly; histograms export the standard
    ``_count`` / ``_sum`` / cumulative ``_bucket{le=...}`` triplet from
    the log-bucketed bins; every telemetry series contributes its exact
    last value as ``f2pm_telemetry_last{series="..."}`` plus its exact
    emission count. The output is a *snapshot* (scrape-style), written
    atomically by the CLI at command end.
    """
    from repro.obs.metrics import get_metrics

    registry = metrics if metrics is not None else get_metrics()
    bus = bus if bus is not None else get_telemetry()
    lines: list[str] = []

    state = registry.dump_state()
    for name, value in state.get("counters", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, value in state.get("gauges", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, hist in state.get("histograms", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for upper, count in hist_buckets_cumulative(hist):
            cumulative = count
            lines.append(
                f'{prom}_bucket{{le="{_prom_value(upper)}"}} {cumulative}'
            )
        lines.append(f'{prom}_bucket{{le="+Inf"}} {int(hist.get("count", 0))}')
        lines.append(f"{prom}_sum {_prom_value(hist.get('total', 0.0))}")
        lines.append(f"{prom}_count {int(hist.get('count', 0))}")

    snap = bus.snapshot()
    if snap["series"]:
        lines.append("# TYPE f2pm_telemetry_last gauge")
        for name, series in snap["series"].items():
            last = series.get("last")
            if last is not None:
                lines.append(
                    f'f2pm_telemetry_last{{series="{name}"}} {_prom_value(last[1])}'
                )
        lines.append("# TYPE f2pm_telemetry_points_total counter")
        for name, series in snap["series"].items():
            lines.append(
                f'f2pm_telemetry_points_total{{series="{name}"}} '
                f"{int(series.get('total', 0))}"
            )
    if snap.get("events_total"):
        lines.append("# TYPE f2pm_telemetry_events_total counter")
        lines.append(f"f2pm_telemetry_events_total {snap['events_total']}")
    return "\n".join(lines) + "\n"


def hist_buckets_cumulative(hist_state: dict[str, Any]) -> Iterable[tuple[float, int]]:
    """Cumulative ``(upper_bound, count)`` pairs from a histogram state.

    Accepts the log-bucketed :meth:`repro.obs.metrics.Histogram.state`
    layout; yields nothing for states without bins (e.g. legacy dumps),
    in which case only ``+Inf``/``_sum``/``_count`` are emitted.
    """
    from repro.obs.metrics import bucket_upper_bound

    bins = hist_state.get("buckets")
    if not bins:
        return
    cumulative = int(hist_state.get("nonpositive", 0))
    for idx in sorted(int(k) for k in bins):
        cumulative += int(bins[str(idx)] if str(idx) in bins else bins[idx])
        yield bucket_upper_bound(idx), cumulative
