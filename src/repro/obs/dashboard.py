"""``f2pm top``: a live terminal dashboard over a telemetry stream.

The dashboard consumes the JSONL stream a run writes with
``--telemetry-jsonl`` (or an in-process :class:`~repro.obs.telemetry.
TelemetryBus` snapshot) and redraws a compact status frame: controller
health, a predicted-RTTF sparkline against observed truth, sanitize
counters, and the most recent rejuvenation/crash events.

Everything here is deliberately split into pure pieces so it is
testable without a terminal:

:class:`DashboardState`
    folds JSONL records into bounded :class:`~repro.obs.telemetry.
    TimeSeries` buffers — a dashboard watching an arbitrarily long run
    holds O(capacity) memory, same guarantee as the bus itself.
:func:`sparkline`
    values → unicode block characters, no I/O.
:func:`render_frame`
    state → one multi-line string, no I/O.
:func:`run_top`
    the only impure part: tails the file, clears the screen, sleeps.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, TextIO

from repro.obs.telemetry import JSONL_SCHEMA, TimeSeries

#: Unicode block ramp used by :func:`sparkline` (8 levels).
_BLOCKS = "▁▂▃▄▅▆▇█"

#: Series the dashboard knows how to headline, in display order.
_HEADLINE_SERIES = (
    "controller.predicted_rttf",
    "controller.actual_rttf",
    "controller.rttf_error",
    "controller.ewma_rt",
    "controller.utilization",
    "controller.stale_holds",
    "controller.episode_uptime",
    "sanitize.dropped_total",
    "fleet.live_fraction",
    "fleet.capacity_headroom",
    "fleet.predicted_failures_per_hour",
)


def sparkline(values: "list[float]", width: int = 48) -> str:
    """Render values as a fixed-width unicode sparkline (pure).

    Values are resampled to ``width`` columns (last-value-per-column)
    and scaled to the min..max range; a flat series renders mid-blocks.
    """
    if not values:
        return ""
    if len(values) > width:
        # Deterministic resample: last value of each equal slice.
        step = len(values) / width
        values = [values[min(len(values) - 1, int((i + 1) * step) - 1)] for i in range(width)]
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[3] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[max(0, min(len(_BLOCKS) - 1, idx))])
    return "".join(out)


class DashboardState:
    """Bounded fold of a telemetry record stream (pure data, no I/O)."""

    def __init__(self, series_capacity: int = 512, events_capacity: int = 64) -> None:
        self.series: dict[str, TimeSeries] = {}
        self.events: list[dict[str, Any]] = []
        self.events_capacity = events_capacity
        self.series_capacity = series_capacity
        self.points_total = 0
        self.events_total = 0
        self.meta: dict[str, Any] = {}
        self.schema_ok: "bool | None" = None

    def feed(self, record: "dict[str, Any]") -> None:
        """Fold one JSONL record (``meta`` / ``point`` / ``event``)."""
        kind = record.get("kind")
        if kind == "meta":
            self.meta = {k: v for k, v in record.items() if k != "kind"}
            self.schema_ok = record.get("schema") == JSONL_SCHEMA
        elif kind == "point":
            name = record.get("series")
            if not isinstance(name, str):
                return
            s = self.series.get(name)
            if s is None:
                s = self.series[name] = TimeSeries(name, self.series_capacity)
            try:
                s.emit(float(record.get("t", 0.0)), float(record.get("v", 0.0)))
            except (TypeError, ValueError):
                return
            self.points_total += 1
        elif kind == "event":
            self.events_total += 1
            self.events.append({k: v for k, v in record.items() if k != "kind"})
            if len(self.events) > self.events_capacity:
                del self.events[0]

    def feed_all(self, records: "list[dict[str, Any]]") -> None:
        for rec in records:
            self.feed(rec)

    @classmethod
    def from_bus(cls, bus) -> "DashboardState":
        """Build a state directly from an in-process bus snapshot."""
        state = cls()
        snap = bus.snapshot()
        for name, series in snap.get("series", {}).items():
            for t, v in series.get("points", []):
                state.feed({"kind": "point", "series": name, "t": t, "v": v})
        for ev in snap.get("events", []):
            state.feed({"kind": "event", **ev})
        return state

    def last(self, name: str) -> "float | None":
        s = self.series.get(name)
        return None if s is None else s.last_value


def _fmt(value: "float | None", unit: str = "") -> str:
    if value is None:
        return "-"
    if abs(value) >= 1000:
        return f"{value:,.0f}{unit}"
    return f"{value:.2f}{unit}"


def render_frame(state: DashboardState, width: int = 78) -> str:
    """Render one dashboard frame as a multi-line string (pure)."""
    bar = "=" * width
    lines = [bar, "f2pm top — live telemetry".center(width), bar]
    src = state.meta.get("command") or state.meta.get("source")
    head = f" stream: {state.points_total} points, {state.events_total} events"
    if src:
        head += f"  ({src})"
    if state.schema_ok is False:
        head += "  [WARNING: unknown schema]"
    lines.append(head)
    lines.append("")

    # Controller health headline.
    pred = state.last("controller.predicted_rttf")
    err = state.last("controller.rttf_error")
    ewma = state.last("controller.ewma_rt")
    util = state.last("controller.utilization")
    stale = state.last("controller.stale_holds")
    lines.append(
        " controller   "
        f"predicted RTTF {_fmt(pred, 's'):>12}   "
        f"RTTF error {_fmt(err, 's'):>10}   "
        f"stale holds {_fmt(stale):>6}"
    )
    lines.append(
        "              "
        f"EWMA resp     {_fmt(ewma, 's'):>12}   "
        f"utilization {_fmt(util):>9}"
    )
    lines.append("")

    # Sparklines for every known series that has data.
    spark_width = max(16, width - 34)
    drew_any = False
    for name in _HEADLINE_SERIES:
        s = state.series.get(name)
        if s is None or len(s) == 0:
            continue
        drew_any = True
        lines.append(
            f" {name:<28} {sparkline(s.values, spark_width)}"
        )
        lines.append(
            f" {'':<28} last {_fmt(s.last_value):>10}  n={s.total}"
        )
    # Any series the headline list does not know about still shows up.
    extras = sorted(set(state.series) - set(_HEADLINE_SERIES))
    for name in extras:
        s = state.series[name]
        if len(s) == 0:
            continue
        drew_any = True
        lines.append(f" {name:<28} {sparkline(s.values, spark_width)}")
    if not drew_any:
        lines.append(" (no points yet)")
    lines.append("")

    # Sanitize counters.
    dropped = state.last("sanitize.dropped_total")
    stream_dropped = state.last("sanitize.stream_dropped")
    resets = state.last("sanitize.stream_resets")
    lines.append(
        " sanitize     "
        f"dropped {_fmt(dropped):>8}   "
        f"stream drops {_fmt(stream_dropped):>8}   "
        f"clock resets {_fmt(resets):>6}"
    )
    lines.append("")

    # Recent events (rejuvenations, crashes, stale holds, fallbacks).
    lines.append(f" recent events ({state.events_total} total)")
    recent = state.events[-8:]
    if not recent:
        lines.append("   (none)")
    for ev in recent:
        attrs = ", ".join(
            f"{k}={_fmt(v) if isinstance(v, float) else v}"
            for k, v in ev.items()
            if k not in ("t", "event")
        )
        lines.append(f"   t={ev.get('t', 0.0):>10.1f}s  {ev.get('event', '?'):<14} {attrs}")
    lines.append(bar)
    return "\n".join(lines)


class _Tail:
    """Incremental reader of a growing JSONL file.

    Keeps a byte offset and a partial-line carry so each poll parses
    only what was appended since the previous poll; a torn final line
    is held back until its newline arrives (or dropped at EOF).
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._offset = 0
        self._carry = ""

    def poll(self) -> "list[dict[str, Any]]":
        try:
            with self.path.open("r", encoding="utf-8", errors="replace") as fh:
                fh.seek(self._offset)
                chunk = fh.read()
                self._offset = fh.tell()
        except OSError:
            return []
        if not chunk:
            return []
        text = self._carry + chunk
        lines = text.split("\n")
        self._carry = lines.pop()  # "" if chunk ended on a newline
        records = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue
            if isinstance(rec, dict):
                records.append(rec)
        return records


def run_top(
    path: "str | Path",
    follow: bool = False,
    interval: float = 1.0,
    once: bool = False,
    out: "TextIO | None" = None,
    max_frames: "int | None" = None,
) -> int:
    """Drive the dashboard over a JSONL stream (the impure shell).

    ``once`` renders a single frame from the file as-is and returns —
    the CI smoke-test mode. ``follow`` keeps tailing and redrawing every
    ``interval`` seconds (ANSI clear between frames) until interrupted
    or, when ``max_frames`` is set, for that many frames.
    """
    out = out if out is not None else sys.stdout
    file = Path(path)
    if not file.exists():
        print(f"error: telemetry stream not found: {path}", file=sys.stderr)
        return 1
    state = DashboardState()
    tail = _Tail(file)
    state.feed_all(tail.poll())
    if once or not follow:
        out.write(render_frame(state) + "\n")
        return 0
    frames = 0
    try:
        while True:
            out.write("\x1b[2J\x1b[H")  # clear screen, home cursor
            out.write(render_frame(state) + "\n")
            out.flush()
            frames += 1
            if max_frames is not None and frames >= max_frames:
                return 0
            time.sleep(interval)
            state.feed_all(tail.poll())
    except KeyboardInterrupt:
        return 0
