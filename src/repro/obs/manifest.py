"""Run manifests: one JSON document that reproduces a result.

The paper's tables and figures are only as trustworthy as the run that
produced them. A manifest freezes everything that run depended on —
configuration, seeds, package version — together with everything it
measured — the span tree and the metrics snapshot — so any artefact can
be traced back to (and re-executed from) its manifest::

    {
      "schema": "f2pm.manifest/1",
      "kind": "f2pm.run",
      "package": {"name": "repro", "version": "1.0.0"},
      "python": "3.11.7",
      "created_unix": 1754550000.0,
      "config": {...},          # full F2PMConfig / driver parameters
      "seeds": {"f2pm": 0},
      "trace": {...},           # span tree (repro.obs.trace schema)
      "metrics": {...},         # registry snapshot
      "reports": [...]          # per-model validation reports
    }

:func:`build_manifest` assembles the document (running every value
through :func:`jsonable`, which flattens dataclasses, numpy scalars and
arrays), :func:`write_manifest` persists it next to the outputs it
describes, :func:`read_manifest` loads it back.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from pathlib import Path
from typing import Any

from repro._version import __version__
from repro.obs.trace import NullSpan, Span

#: Manifest document schema identifier (bump on breaking layout change).
MANIFEST_SCHEMA = "f2pm.manifest/1"


def jsonable(obj: Any) -> Any:
    """Recursively convert *obj* into JSON-serializable plain types.

    Handles dataclasses, mappings, sequences, numpy scalars/arrays,
    paths and spans; anything else falls back to ``str``.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # NaN/Inf are not valid JSON; represent them as strings.
        if obj != obj or obj in (float("inf"), float("-inf")):
            return str(obj)
        return obj
    if isinstance(obj, (Span, NullSpan)):
        return obj.to_dict()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, Path):
        return str(obj)
    # numpy scalars and arrays (avoid importing numpy here for the
    # zero-dependency modules; duck-type on the standard conversions).
    item = getattr(obj, "item", None)
    if callable(item) and getattr(obj, "shape", None) == ():
        return jsonable(obj.item())
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return jsonable(tolist())
    return str(obj)


def build_manifest(
    kind: str,
    *,
    config: Any = None,
    seeds: "dict[str, Any] | None" = None,
    trace: "Span | NullSpan | dict | None" = None,
    metrics: "dict[str, Any] | None" = None,
    reports: "list | None" = None,
    extra: "dict[str, Any] | None" = None,
) -> dict[str, Any]:
    """Assemble a manifest document for one run of *kind*."""
    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "kind": kind,
        "package": {"name": "repro", "version": __version__},
        "python": sys.version.split()[0],
        "created_unix": time.time(),
    }
    if config is not None:
        manifest["config"] = jsonable(config)
    if seeds is not None:
        manifest["seeds"] = jsonable(seeds)
    if trace is not None:
        manifest["trace"] = jsonable(trace)
    if metrics is not None:
        manifest["metrics"] = jsonable(metrics)
    if reports is not None:
        manifest["reports"] = jsonable(reports)
    if extra:
        manifest.update(jsonable(extra))
    return manifest


def write_manifest(manifest: dict[str, Any], path: "str | Path") -> Path:
    """Write a manifest as indented JSON; returns the resolved path."""
    file = Path(path)
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(json.dumps(manifest, indent=2) + "\n")
    return file


def read_manifest(path: "str | Path") -> dict[str, Any]:
    """Load a manifest (or any obs JSON document) from disk."""
    return json.loads(Path(path).read_text())


def manifest_path_for(output: "str | Path") -> Path:
    """Conventional manifest location next to an output artefact:
    ``report.md`` → ``report.manifest.json``."""
    out = Path(output)
    return out.with_name(out.stem + ".manifest.json")
